//! Time-ordered event storage and queues with FIFO tie-breaking.
//!
//! Two pieces live here:
//!
//! * [`EventStore`] — a slab/arena for event payloads.  Payloads are stored
//!   once and addressed by a compact [`EventKey`]; freed slots are recycled,
//!   so a steady-state simulation performs no per-event `Vec` growth and the
//!   priority structures below shuffle 24-byte tickets instead of payloads.
//! * [`EventQueue`] — the time-ordered queue built on top of the store, with
//!   a choice of priority structure ([`QueueKind`]): the classic binary heap
//!   (default), a calendar queue (R. Brown, CACM 1988) whose enqueue and
//!   dequeue are amortised O(1) for the heavy, roughly uniform event streams
//!   a sweep-scale simulation produces, or a ladder queue (Tang, Goh &
//!   Thng, ACM TOMACS 2005) that keeps the O(1) amortised cost when the
//!   pending population is heavily *skewed* in time.
//!
//! The queue is generic over the payload type so that the closure-based
//! [`crate::engine::Engine`] and the typed event loop used by the overlay
//! crate ([`crate::engine::TypedEngine`]) can share the same ordering
//! semantics.
//!
//! # Choosing a queue kind
//!
//! All three structures obey the same ordering contract; the choice is pure
//! performance, driven by the *size* and *shape* of the pending population:
//!
//! * **[`QueueKind::BinaryHeap`]** — small populations (≲ a few hundred) or
//!   bursty push/drain patterns.  O(log n) is unbeatable while `n` is tiny
//!   and the heap has no bucket bookkeeping to amortise.  The default.
//! * **[`QueueKind::Calendar`]** — large populations whose firing times are
//!   *roughly uniform* over their span (e.g. tens of thousands of job
//!   completions spread over a day).  Each bucket then holds O(1) events and
//!   both operations are amortised O(1).  Its weakness is skew: the bucket
//!   width is estimated from the population's overall span, so a dense
//!   cluster (thousands of reservation timeouts due within a couple of
//!   seconds) riding on a sparse tail (completions spread over hours) lands
//!   in a handful of buckets whose sorted inserts degrade toward O(n).
//! * **[`QueueKind::Ladder`]** — large *skewed* populations.  Buckets accept
//!   events by unsorted append and are only sorted (bottom tier) when their
//!   turn to fire comes; a bucket that turns out to be overcrowded is
//!   re-partitioned into a finer rung instead of being scanned linearly, so
//!   dense clusters cost O(1) amortised per event no matter how narrow they
//!   are.  This is the structure for timeout-heavy timelines where most
//!   events are armed, cancelled and collected within a tight window.
//!
//! Cancellation-heavy workloads also benefit from the transfer-time
//! tombstone compaction described below, which the calendar and ladder
//! queues perform and the heap (which never moves tickets between buckets)
//! cannot.
//!
//! # Ordering contract (FIFO tie-break)
//!
//! Events scheduled for the same virtual instant are delivered **in the
//! order they were scheduled**, whatever the [`QueueKind`].  Every push is
//! stamped with a monotonically increasing sequence number, and both
//! priority structures order by `(time, seq)`; the calendar queue keeps each
//! bucket sorted by that same key, so moving events between buckets on a
//! resize cannot reorder ties.  Simulations rely on this for determinism —
//! e.g. an "arrival" and the "probe" it schedules at the same instant must
//! always fire in that order — and `ties_are_fifo*` pins the contract.
//!
//! # Cancellation and its interaction with FIFO ordering
//!
//! [`EventQueue::push`] returns the payload's [`EventKey`];
//! [`EventQueue::cancel`] revokes a pending event by that key and hands the
//! payload back.  Cancellation never touches the priority structures: the
//! payload slot is turned into a **tombstone** and the 24-byte ticket stays
//! queued until its firing time comes up, at which point the pop loop
//! discards it and recycles the slot.  Because no ticket is ever removed or
//! re-inserted out of band, the `(time, seq)` order of the *surviving*
//! events — including FIFO among equal instants — is exactly the order they
//! were originally pushed in; cancelling an event can never reorder its
//! neighbours (`cancel_preserves_fifo_around_tombstones` pins this).
//!
//! One refinement keeps cancel-heavy workloads cheap: whenever the calendar
//! or ladder queue *transfers* a bucket anyway (a calendar resize, a ladder
//! rung spawn or bottom-tier transfer), tombstoned tickets are compacted out
//! on the way instead of being carried to their firing time.  Dropping a
//! ticket cannot reorder the survivors, so the FIFO contract is unaffected;
//! it only means [`EventQueue::queued_len`] (tickets, including tombstones
//! awaiting collection) converges toward [`EventQueue::live_len`] (pending
//! payloads) without waiting for the tombstones' nominal firing times.
//!
//! Keys are generation-stamped: once an event has fired or been cancelled,
//! its key is stale, and cancelling a stale key is a harmless no-op that
//! returns `None` — even if the underlying slot has since been recycled for
//! a newer event.  This is what makes "cancel the timeout when the reply
//! arrives" races safe to express: the late cancel of an already-fired
//! timeout cannot revoke an unrelated event.
//!
//! Cancellation-heavy *long* traces can also compact on demand:
//! [`EventQueue::reap`] eagerly collects every tombstoned ticket (and
//! recycles its slot) without waiting for firing times or bucket transfers,
//! so a driver can bound `queued_len() - live_len()` on whatever cadence it
//! documents.
//!
//! # Parallel shards
//!
//! A conservatively synchronised parallel simulation (see `bench::shard`)
//! runs one `EventQueue`-backed timeline per shard and advances the shards
//! on separate threads between barriers.  Two properties of this module make
//! that sound:
//!
//! * **Safe horizon** — once a timeline has drained everything due at or
//!   before its barrier time, the firing time of its next pending event
//!   ([`EventQueue::peek_time`]) is a *lower bound* on when the shard's
//!   state can next change: between barriers new work enters a shard's
//!   timeline only from its own event handlers, never from another shard.
//!   A coordinator may therefore inspect — or splice completions into —
//!   every shard at a barrier instant `t` once each shard has drained to
//!   `t`, and the merged view it brokers against is exactly the one a
//!   sequential execution would see.
//! * **Per-shard FIFO ties** — sequence numbers are per-queue, so each
//!   shard's `(time, seq)` order is exactly the order *that shard*
//!   scheduled its events, independent of thread interleaving; a parallel
//!   run is bit-identical to a sequential execution of the same per-shard
//!   schedules.  Cross-shard completions are scattered back through
//!   [`EventQueue::push_batch`] at the barrier, in deterministic
//!   (shard-index, job) order, so they too occupy reproducible sequence
//!   numbers.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

// ---------------------------------------------------------------------------
// EventStore: slab-allocated payloads behind stable keys
// ---------------------------------------------------------------------------

/// Compact generation-stamped handle to a payload inside an [`EventStore`].
///
/// A key is *live* from [`EventStore::insert`] until the payload leaves the
/// store (fired via `take`/`resolve`, or revoked via `cancel`).  Stale keys
/// are harmless: the generation stamp lets the store tell a recycled slot
/// from the original occupant, so `cancel` with a stale key is a no-op
/// instead of revoking an unrelated newer event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventKey {
    index: u32,
    generation: u32,
}

impl EventKey {
    /// Raw slot index (exposed for diagnostics).
    pub fn index(self) -> usize {
        self.index as usize
    }

    /// The slot generation this key refers to (exposed for diagnostics).
    pub fn generation(self) -> u32 {
        self.generation
    }
}

/// Sentinel for "no free slot" in the intrusive free list.
const NO_FREE_SLOT: u32 = u32::MAX;

/// Payload state of one slab slot.
enum SlotState<E> {
    /// Free and threading the intrusive free list (so freeing and reusing a
    /// slot touches exactly one cache line — no side array of free indices).
    Vacant { next_free: u32 },
    /// Holding a pending event's payload.
    Occupied(E),
    /// Cancelled: the payload is gone but a ticket in some priority
    /// structure still points here, so the slot cannot be recycled until
    /// that ticket is popped and discarded.
    Tombstone,
}

/// One slab slot: its payload state plus the generation counter that
/// invalidates stale [`EventKey`]s once the slot is recycled.
struct Slot<E> {
    generation: u32,
    state: SlotState<E>,
}

/// Arena of event payloads with free-slot recycling.
///
/// `insert` returns a stable [`EventKey`]; `take` frees the slot for reuse
/// through an intrusive free list.  The backing `Vec` only grows when more
/// events are *simultaneously* pending than ever before, so a steady-state
/// simulation reaches a high-water mark once and then allocates nothing
/// further for bookkeeping.
///
/// `cancel` removes a payload *without* freeing the slot (leaving a
/// tombstone for the priority structure's ticket to collect later); slots
/// carry a generation counter so keys cannot alias across recycling.
pub struct EventStore<E> {
    slots: Vec<Slot<E>>,
    free_head: u32,
    live: usize,
    tombstones: usize,
}

impl<E> Default for EventStore<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventStore<E> {
    /// Creates an empty store.
    pub fn new() -> Self {
        EventStore {
            slots: Vec::new(),
            free_head: NO_FREE_SLOT,
            live: 0,
            tombstones: 0,
        }
    }

    /// Creates a store pre-sized for `cap` simultaneously pending payloads.
    pub fn with_capacity(cap: usize) -> Self {
        EventStore {
            slots: Vec::with_capacity(cap),
            free_head: NO_FREE_SLOT,
            live: 0,
            tombstones: 0,
        }
    }

    /// Reserves room for at least `additional` more simultaneous payloads.
    /// Inserts fill vacant slots before growing, so only the shortfall past
    /// the vacant count needs backing capacity (`Vec::reserve` already
    /// accounts for capacity beyond the current length).  Tombstoned slots
    /// count as unavailable: they only free up when their ticket is popped.
    pub fn reserve(&mut self, additional: usize) {
        let vacant = self.slots.len() - self.live - self.tombstones;
        self.slots.reserve(additional.saturating_sub(vacant));
    }

    /// Number of slots allocated (the high-water mark of pending events).
    pub fn capacity(&self) -> usize {
        self.slots.capacity()
    }

    /// Number of live payloads.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no payloads are stored.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Stores `payload`, recycling a freed slot when one exists.
    #[inline]
    pub fn insert(&mut self, payload: E) -> EventKey {
        self.live += 1;
        let idx = self.free_head;
        if idx != NO_FREE_SLOT {
            let slot = &mut self.slots[idx as usize];
            match std::mem::replace(&mut slot.state, SlotState::Occupied(payload)) {
                SlotState::Vacant { next_free } => self.free_head = next_free,
                _ => unreachable!("free list points at a non-vacant slot"),
            }
            EventKey {
                index: idx,
                generation: slot.generation,
            }
        } else {
            let idx = u32::try_from(self.slots.len()).expect("event store exceeds u32 slots");
            assert!(idx != NO_FREE_SLOT, "event store exceeds u32 slots");
            self.slots.push(Slot {
                generation: 0,
                state: SlotState::Occupied(payload),
            });
            EventKey {
                index: idx,
                generation: 0,
            }
        }
    }

    /// Marks `key`'s slot vacant and threads it onto the free list, bumping
    /// the generation so stale keys to this slot can never match again.
    #[inline]
    fn vacate(&mut self, index: u32) {
        let slot = &mut self.slots[index as usize];
        slot.generation = slot.generation.wrapping_add(1);
        slot.state = SlotState::Vacant {
            next_free: self.free_head,
        };
        self.free_head = index;
    }

    /// Removes and returns the payload behind `key`.
    ///
    /// # Panics
    ///
    /// Panics if the key is stale (fired, cancelled, or recycled) — a
    /// double-take of a slot is a queue bug, never a user error.  Callers
    /// racing against cancellation should use [`EventStore::resolve`].
    #[inline]
    pub fn take(&mut self, key: EventKey) -> E {
        self.resolve(key).expect("event key taken twice")
    }

    /// Collects the payload behind a popped ticket's key.
    ///
    /// Returns the payload if the slot is live, or `None` if the event was
    /// cancelled in the meantime (the tombstone is recycled either way).
    /// Stale-generation keys also return `None` without touching the slot.
    #[inline]
    pub fn resolve(&mut self, key: EventKey) -> Option<E> {
        let slot = self.slots.get_mut(key.index as usize)?;
        if slot.generation != key.generation {
            return None;
        }
        match std::mem::replace(&mut slot.state, SlotState::Tombstone) {
            SlotState::Occupied(payload) => {
                self.live -= 1;
                self.vacate(key.index);
                Some(payload)
            }
            SlotState::Tombstone => {
                self.tombstones -= 1;
                self.vacate(key.index);
                None
            }
            SlotState::Vacant { next_free } => {
                // Same generation but vacant cannot happen (vacating bumps
                // the generation); restore the state before surfacing it.
                self.slots[key.index as usize].state = SlotState::Vacant { next_free };
                unreachable!("live-generation key points at a vacant slot")
            }
        }
    }

    /// Revokes the payload behind `key` without recycling the slot: the slot
    /// becomes a tombstone that the priority structure's ticket collects on
    /// pop.  Returns `None` (and changes nothing) if the key is stale.
    #[inline]
    pub fn cancel(&mut self, key: EventKey) -> Option<E> {
        let slot = self.slots.get_mut(key.index as usize)?;
        if slot.generation != key.generation {
            return None;
        }
        match std::mem::replace(&mut slot.state, SlotState::Tombstone) {
            SlotState::Occupied(payload) => {
                self.live -= 1;
                self.tombstones += 1;
                Some(payload)
            }
            other => {
                // Already a tombstone (double cancel) — put it back.
                slot.state = other;
                None
            }
        }
    }

    /// If `key`'s slot holds a tombstone, recycles it and returns `true`.
    ///
    /// This is the transfer-time compaction hook: a priority structure that
    /// is about to move a ticket between buckets calls this first and drops
    /// the ticket when the event behind it is already cancelled, instead of
    /// carrying the dead ticket to its firing time.  Live (and stale-key)
    /// slots are left untouched.
    #[inline]
    fn reap(&mut self, key: EventKey) -> bool {
        let Some(slot) = self.slots.get_mut(key.index as usize) else {
            return false;
        };
        if slot.generation != key.generation {
            // A queued ticket's slot is never recycled out from under it, so
            // a mismatch can only mean the caller handed us a foreign key;
            // leave it alone.
            return false;
        }
        if matches!(slot.state, SlotState::Tombstone) {
            self.tombstones -= 1;
            self.vacate(key.index);
            true
        } else {
            false
        }
    }

    /// Number of cancelled payload slots whose tickets are still queued.
    pub fn tombstone_count(&self) -> usize {
        self.tombstones
    }

    /// True if `key` still refers to a pending (not fired, not cancelled)
    /// payload.
    #[inline]
    pub fn is_live(&self, key: EventKey) -> bool {
        self.slots
            .get(key.index as usize)
            .map(|s| s.generation == key.generation && matches!(s.state, SlotState::Occupied(_)))
            .unwrap_or(false)
    }

    /// Discards all payloads and recycles every slot.  All outstanding keys
    /// become invalid (the slot table is rebuilt from generation 0).
    pub fn clear(&mut self) {
        self.slots.clear();
        self.free_head = NO_FREE_SLOT;
        self.live = 0;
        self.tombstones = 0;
    }
}

// ---------------------------------------------------------------------------
// Tickets and the selectable priority structures
// ---------------------------------------------------------------------------

/// Which priority structure an [`EventQueue`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueKind {
    /// `std::collections::BinaryHeap` of tickets: O(log n) push/pop, best
    /// for small or bursty queues.  The default.
    #[default]
    BinaryHeap,
    /// Calendar queue: amortised O(1) push/pop for large, roughly uniform
    /// event populations (sweep-scale simulations).
    Calendar,
    /// Ladder queue: amortised O(1) push/pop that stays O(1) on heavily
    /// *skewed* populations (dense clusters riding on a sparse tail, e.g.
    /// timeout-heavy timelines), where the calendar's uniform bucket width
    /// degrades.  See the module docs for the selection guide.
    Ladder,
}

/// A queue ticket: when to fire, FIFO tie-break, and where the payload lives.
///
/// The firing time and sequence number are pre-packed into one `u128`
/// (`time << 64 | seq`) at push time, so the comparison every hot path
/// performs — heap sift, calendar sorted insert, ladder bottom sort — is a
/// single wide-integer compare instead of a two-field lexicographic one,
/// and the ticket stays 24 bytes.
#[derive(Debug, Clone, Copy)]
struct Ticket {
    /// `(time_ns << 64) | seq`: orders by time, FIFO among ties.
    packed: u128,
    key: EventKey,
}

impl Ticket {
    #[inline]
    fn new(time: SimTime, seq: u64, key: EventKey) -> Self {
        Ticket {
            packed: ((time.as_nanos() as u128) << 64) | seq as u128,
            key,
        }
    }

    /// The firing time, recovered from the high 64 bits.
    #[inline]
    fn time(&self) -> SimTime {
        SimTime::from_nanos(self.time_ns())
    }

    /// The firing time in nanoseconds (what the bucket maths works in).
    #[inline]
    fn time_ns(&self) -> u64 {
        (self.packed >> 64) as u64
    }

    #[inline]
    fn sort_key(&self) -> u128 {
        self.packed
    }
}

/// Wrapper giving `BinaryHeap` min-queue semantics over the packed
/// `(time, seq)` key.
struct HeapTicket(Ticket);

impl PartialEq for HeapTicket {
    fn eq(&self, other: &Self) -> bool {
        self.0.packed == other.0.packed
    }
}
impl Eq for HeapTicket {}
impl PartialOrd for HeapTicket {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapTicket {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (then lowest seq)
        // ticket is popped first.  One u128 compare: this is the hottest
        // instruction of the heap-backed engine's churn loop.
        other.0.packed.cmp(&self.0.packed)
    }
}

/// Calendar queue of tickets (R. Brown, "Calendar queues: a fast O(1)
/// priority queue implementation for the simulation event set problem").
///
/// Buckets partition time into slots of `width` nanoseconds; bucket `i`
/// holds every pending event whose slot index is `i (mod nbuckets)`, kept
/// sorted *descending* by `(time, seq)` so the slot's earliest ticket sits
/// at the back and pops are `Vec::pop` — O(1), no memmove.  A cursor walks
/// the buckets in time order; when a whole "year" (nbuckets × width)
/// contains nothing, the cursor jumps straight to the earliest pending
/// event.  The bucket count doubles/halves as the population grows/shrinks,
/// and the width is re-estimated from the population's time span on every
/// resize.
struct CalendarQueue {
    /// Each bucket is sorted descending by `(time, seq)` (earliest last).
    buckets: Vec<Vec<Ticket>>,
    /// Slot width in nanoseconds (>= 1).
    width: u64,
    /// Total pending tickets.
    len: usize,
    /// Cursor: bucket the next event is searched from.
    current: usize,
    /// Exclusive upper time bound (ns) of the cursor's slot in this year.
    /// Invariant: every pending ticket has `time >= year_end - width`.
    year_end: u128,
}

const CAL_MIN_BUCKETS: usize = 4;
const CAL_MAX_BUCKETS: usize = 1 << 20;

impl CalendarQueue {
    fn new() -> Self {
        Self::sized(CAL_MIN_BUCKETS, 1)
    }

    fn sized(nbuckets: usize, width: u64) -> Self {
        CalendarQueue {
            buckets: (0..nbuckets).map(|_| Vec::new()).collect(),
            width: width.max(1),
            len: 0,
            current: 0,
            year_end: width.max(1) as u128,
        }
    }

    #[inline]
    fn bucket_of(&self, t: u64) -> usize {
        ((t / self.width) as usize) % self.buckets.len()
    }

    /// Exclusive upper bound of the slot containing `t`.
    #[inline]
    fn slot_end(&self, t: u64) -> u128 {
        (t as u128 / self.width as u128 + 1) * self.width as u128
    }

    #[inline]
    fn push(&mut self, ticket: Ticket, reap: &mut dyn FnMut(EventKey) -> bool) {
        let t = ticket.time_ns();
        let rewind = self.len == 0 || (t as u128) < self.year_end - self.width as u128;
        let b = self.bucket_of(t);
        let bucket = &mut self.buckets[b];
        let pos = bucket.partition_point(|other| other.sort_key() > ticket.sort_key());
        bucket.insert(pos, ticket);
        self.len += 1;
        if rewind {
            // The new ticket precedes the cursor (or the queue was empty):
            // point the cursor at its slot so the year invariant holds.
            self.current = b;
            self.year_end = self.slot_end(t);
        }
        if self.len > 2 * self.buckets.len() && self.buckets.len() < CAL_MAX_BUCKETS {
            self.resize(self.buckets.len() * 2, reap);
        }
    }

    /// Locates the earliest ticket, advancing the cursor up to one year; on a
    /// dry year, jumps the cursor to the earliest pending slot directly.
    /// Returns the bucket index holding the minimum (its *last* element).
    #[inline]
    fn seek_min(&mut self) -> Option<usize> {
        if self.len == 0 {
            return None;
        }
        let n = self.buckets.len();
        for _ in 0..n {
            if let Some(min) = self.buckets[self.current].last() {
                if (min.time_ns() as u128) < self.year_end {
                    return Some(self.current);
                }
            }
            self.current = (self.current + 1) % n;
            self.year_end += self.width as u128;
        }
        // A whole year was empty: jump straight to the earliest bucket tail.
        let (b, t) = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, bucket)| bucket.last().map(|f| (i, f.sort_key())))
            .min_by_key(|&(_, key)| key)
            .map(|(i, key)| (i, (key >> 64) as u64))
            .expect("len > 0 means some bucket is non-empty");
        self.current = b;
        self.year_end = self.slot_end(t);
        Some(b)
    }

    #[inline]
    fn peek(&mut self) -> Option<Ticket> {
        self.seek_min()
            .map(|b| *self.buckets[b].last().expect("seek_min found this bucket"))
    }

    #[inline]
    fn pop(&mut self, reap: &mut dyn FnMut(EventKey) -> bool) -> Option<Ticket> {
        let b = self.seek_min()?;
        let ticket = self.buckets[b].pop().expect("seek_min found this bucket");
        self.len -= 1;
        if self.len < self.buckets.len() / 2 && self.buckets.len() > CAL_MIN_BUCKETS {
            self.resize(self.buckets.len() / 2, reap);
        }
        Some(ticket)
    }

    fn clear(&mut self) {
        for b in &mut self.buckets {
            b.clear();
        }
        self.len = 0;
    }

    /// Rebuilds with `nbuckets` buckets, re-estimating the slot width from
    /// the population's time span so that slots hold O(1) events each.
    /// Every ticket is transferred anyway, so tombstoned tickets are
    /// compacted out here instead of being carried to their firing time.
    fn resize(&mut self, nbuckets: usize, reap: &mut dyn FnMut(EventKey) -> bool) {
        let mut all: Vec<Ticket> = Vec::with_capacity(self.len);
        for b in &mut self.buckets {
            all.append(b);
        }
        all.retain(|t| !reap(t.key));
        let (mut min_t, mut max_t) = (u64::MAX, 0u64);
        for t in &all {
            let ns = t.time_ns();
            min_t = min_t.min(ns);
            max_t = max_t.max(ns);
        }
        let span = max_t.saturating_sub(min_t);
        // Aim for ~one event per slot across the populated span; a width of
        // 1 (all ties) degenerates to one sorted bucket, which is still
        // correct, just not O(1).
        self.width = (span / all.len().max(1) as u64).max(1);
        self.buckets = (0..nbuckets).map(|_| Vec::new()).collect();
        self.len = 0;
        let cursor_floor = all.iter().map(|t| t.time_ns()).min().unwrap_or(0);
        self.current = self.bucket_of(cursor_floor);
        self.year_end = self.slot_end(cursor_floor);
        for ticket in all {
            let b = self.bucket_of(ticket.time_ns());
            let bucket = &mut self.buckets[b];
            let pos = bucket.partition_point(|other| other.sort_key() > ticket.sort_key());
            bucket.insert(pos, ticket);
            self.len += 1;
        }
    }
}

/// Once the innermost rung's current bucket shrinks to this many tickets it
/// is sorted into the bottom tier instead of spawning a finer rung.
const LADDER_BOTTOM_THRESH: usize = 32;
/// Hard cap on simultaneously live rungs; at the cap an overcrowded bucket
/// is sorted into the bottom tier anyway.  Widths at least halve per spawn,
/// so even pathological schedules stay well under this.
const LADDER_MAX_RUNGS: usize = 32;

/// One rung of a [`LadderQueue`]: a bucket array partitioning a half-open
/// time interval `[start, start + width·buckets.len())` into equal slots.
/// Buckets before `cur` have been consumed; pushes only ever target
/// `cur..`, so buckets receive events by *unsorted append*.
struct Rung {
    buckets: Vec<Vec<Ticket>>,
    /// Slot width in nanoseconds (>= 1).
    width: u64,
    /// Time at the start of bucket 0.
    start: u64,
    /// Exclusive upper bound of the interval this rung *owns* under the
    /// tier tiling.  The bucket array's raw coverage
    /// (`start + width·buckets.len()`) may overhang this (widths are
    /// rounded up), but events at or past `limit` belong to the next outer
    /// tier — routing by coverage instead of `limit` would let a late push
    /// overtake earlier events still sitting in the outer rung.
    limit: u128,
    /// Next bucket to consume.
    cur: usize,
    /// Tickets currently held across all buckets.
    count: usize,
}

impl Rung {
    /// Inclusive lower time bound of the unconsumed region.
    #[inline]
    fn cur_start(&self) -> u128 {
        self.start as u128 + self.width as u128 * self.cur as u128
    }

    #[inline]
    fn bucket_of(&self, t: u64) -> usize {
        ((t - self.start) / self.width) as usize
    }
}

/// Ladder queue of tickets (Tang, Goh & Thng, "Ladder queue: an O(1)
/// priority queue structure for large-scale discrete event simulation",
/// ACM TOMACS 2005), adapted to the [`EventStore`] ticket regime.
///
/// Three tiers:
///
/// * **Top** — an unsorted list for the far future (`time >= top_start`).
///   Pushing there is an append; its min/max are tracked for the eventual
///   spawn.
/// * **Rungs** — bucket arrays spawned on demand.  Rung 0 is spawned from
///   the whole top tier; when the bucket whose turn has come is still
///   overcrowded (> [`LADDER_BOTTOM_THRESH`]), it is re-partitioned into a
///   finer rung *covering just that bucket's interval* instead of being
///   sorted wholesale — this recursive refinement is what keeps dense
///   clusters O(1) amortised where the calendar queue's single global
///   bucket width degrades.  Bucket pushes are unsorted appends.
/// * **Bottom** — the currently firing chunk, sorted descending by
///   `(time, seq)` so pops are `Vec::pop`.
///
/// The tiers tile time exactly: `bottom` covers everything before the
/// innermost rung's consumption point, each rung covers up to the next
/// outer rung's consumption point, and `top` covers `top_start..`.  A push
/// is routed by that tiling, so earlier-than-cursor pushes land in
/// `bottom` via one sorted insert.  `bottom` is kept *ascending* behind a
/// consumption cursor (rather than descending behind `Vec::pop`) so the
/// overwhelmingly common near-now push — an event scheduled a few
/// microseconds ahead of the chunk being fired, later than everything
/// still in it — is an O(1) append instead of a whole-chunk memmove;
/// a handler cascade that schedules its successor while a dense tie
/// cluster is draining would otherwise go quadratic.
///
/// Tombstone hygiene: every transfer (top → rung, rung → finer rung, bucket
/// → bottom) runs the store's reap hook and drops tickets whose events were
/// cancelled, so cancel-heavy workloads do not drag dead tickets through
/// the refinement cascade.
struct LadderQueue {
    top: Vec<Ticket>,
    /// Min/max times in `top` (meaningful while `top` is non-empty).
    top_min: u64,
    top_max: u64,
    /// Times `>= top_start` belong to `top` (0 while nothing was spawned, so
    /// everything starts in `top`).
    top_start: u64,
    /// Spawned rungs, coarsest first; `rungs.last()` is being consumed.
    rungs: Vec<Rung>,
    /// The firing chunk, sorted ascending by `(time, seq)`; tickets before
    /// `bottom_cur` have been consumed.  The vec is drained (and the cursor
    /// reset) the moment the last live ticket pops, so `bottom_cur ==
    /// bottom.len()` implies both are 0.
    bottom: Vec<Ticket>,
    /// Next ticket of `bottom` to fire.
    bottom_cur: usize,
    /// Reusable transfer scratch, so bucket moves do not allocate in steady
    /// state.
    transfer: Vec<Ticket>,
    /// Bucket arrays of collapsed rungs, recycled by the next spawn: a
    /// steady-state spawn/drain/collapse cycle reuses the same buffers
    /// instead of allocating a fresh array (and fresh buckets) every time.
    spare_rungs: Vec<Vec<Vec<Ticket>>>,
    /// Total queued tickets (live + tombstones not yet compacted).
    len: usize,
}

impl LadderQueue {
    fn new() -> Self {
        LadderQueue {
            top: Vec::new(),
            top_min: 0,
            top_max: 0,
            top_start: 0,
            rungs: Vec::new(),
            bottom: Vec::new(),
            bottom_cur: 0,
            transfer: Vec::new(),
            spare_rungs: Vec::new(),
            len: 0,
        }
    }

    #[inline]
    fn push_top(&mut self, ticket: Ticket) {
        let t = ticket.time_ns();
        if self.top.is_empty() {
            self.top_min = t;
            self.top_max = t;
        } else {
            self.top_min = self.top_min.min(t);
            self.top_max = self.top_max.max(t);
        }
        self.top.push(ticket);
    }

    #[inline]
    fn push(&mut self, ticket: Ticket) {
        self.len += 1;
        self.route(ticket);
    }

    /// Routes one ticket to its tier (`push` without the length bump, so
    /// a bottom-spawn can re-route).
    fn route(&mut self, ticket: Ticket) {
        let t = ticket.time_ns();
        // With no spawned structure everything accumulates in the top tier
        // (even below `top_start`: the next spawn re-derives its range from
        // the actual min/max, so rewinds are absorbed there).
        if self.rungs.is_empty() && self.bottom.is_empty() {
            self.push_top(ticket);
            return;
        }
        if t >= self.top_start {
            self.push_top(ticket);
            return;
        }
        // Below every rung's consumption point: the firing chunk.  The
        // common case — later than everything still in the chunk — appends.
        let innermost_floor = self
            .rungs
            .last()
            .map(|r| r.cur_start())
            .unwrap_or(self.top_start as u128);
        if (t as u128) < innermost_floor {
            let live = &self.bottom[self.bottom_cur..];
            let pos = live.partition_point(|other| other.sort_key() < ticket.sort_key());
            // A sorted insert that would shift more than a bucket's worth
            // of tickets means `bottom` has degenerated into a standing
            // working set (a wide chunk that new near-now events keep
            // landing inside): spin its live region back out into a rung
            // (the ladder paper's bottom-spawn) and re-route.
            if live.len() - pos > LADDER_BOTTOM_THRESH && self.rungs.len() < LADDER_MAX_RUNGS {
                self.spawn_from_bottom(innermost_floor);
                self.route(ticket);
                return;
            }
            self.bottom.insert(self.bottom_cur + pos, ticket);
            return;
        }
        // The tiers tile `[bottom, top_start)`: the first rung (walking
        // inside-out) whose *owned* interval reaches past `t` takes it, and
        // `t` is at or past that rung's consumption point by the tiling
        // invariant.
        for rung in self.rungs.iter_mut().rev() {
            if (t as u128) < rung.limit {
                let b = rung.bucket_of(t);
                debug_assert!(b >= rung.cur, "push into a consumed ladder bucket");
                debug_assert!(b < rung.buckets.len(), "push past the rung's coverage");
                rung.buckets[b].push(ticket);
                rung.count += 1;
                return;
            }
        }
        unreachable!("ticket below top_start fits no ladder tier");
    }

    /// Converts the live region of `bottom` into a new innermost rung
    /// owning `[live min, floor)`, leaving `bottom` empty.  `floor` is the
    /// previous innermost consumption point (the exclusive bound of
    /// everything in `bottom`), so the tiling invariant is preserved.
    fn spawn_from_bottom(&mut self, floor: u128) {
        debug_assert!(self.bottom_cur < self.bottom.len());
        self.transfer.clear();
        self.transfer.extend(self.bottom.drain(self.bottom_cur..));
        self.bottom.clear();
        self.bottom_cur = 0;
        // The live region is ascending, so its first ticket is the minimum.
        let min = self.transfer[0].time_ns();
        let span = (floor - min as u128) as u64;
        let n = self.transfer.len() as u64;
        let width = span.div_ceil(n).max(1);
        let nbuckets = (span.div_ceil(width) as usize).max(1);
        self.spawn_rung(min, width, nbuckets, floor);
    }

    /// Spawns rung 0 from the entire top tier (compacting tombstones on the
    /// way) and empties `top`.
    fn spawn_from_top(&mut self, reap: &mut dyn FnMut(EventKey) -> bool) {
        debug_assert!(!self.top.is_empty());
        self.transfer.clear();
        self.transfer.append(&mut self.top);
        let before = self.transfer.len();
        self.transfer.retain(|t| !reap(t.key));
        self.len -= before - self.transfer.len();
        self.top_start = self.top_max.saturating_add(1);
        if self.transfer.is_empty() {
            return;
        }
        let span = (self.top_max - self.top_min).saturating_add(1);
        let n = self.transfer.len() as u64;
        let width = span.div_ceil(n).max(1);
        let nbuckets = (span.div_ceil(width) as usize).max(1);
        self.spawn_rung(self.top_min, width, nbuckets, self.top_start as u128);
    }

    /// Creates a new innermost rung covering `[start, start + width·nbuckets)`
    /// but *owning* only `[start, limit)` under the tier tiling, and
    /// distributes `self.transfer` into its buckets.  Bucket arrays are
    /// recycled from collapsed rungs when available.
    fn spawn_rung(&mut self, start: u64, width: u64, nbuckets: usize, limit: u128) {
        let mut buckets = self.spare_rungs.pop().unwrap_or_default();
        debug_assert!(buckets.iter().all(Vec::is_empty));
        if buckets.len() > nbuckets {
            buckets.truncate(nbuckets);
        } else {
            buckets.resize_with(nbuckets, Vec::new);
        }
        let mut rung = Rung {
            buckets,
            width,
            start,
            limit,
            cur: 0,
            count: self.transfer.len(),
        };
        for ticket in self.transfer.drain(..) {
            let b = rung.bucket_of(ticket.time_ns());
            rung.buckets[b].push(ticket);
        }
        self.rungs.push(rung);
    }

    /// Refills the bottom tier from the rungs (spawning from top when every
    /// rung is exhausted), so that `bottom` is non-empty unless the whole
    /// queue is.  This is where bucket transfers — and therefore tombstone
    /// compaction and recursive refinement — happen.
    fn ensure_bottom(&mut self, reap: &mut dyn FnMut(EventKey) -> bool) {
        while self.bottom_cur == self.bottom.len() {
            // Collapse exhausted rungs, stashing their (empty) bucket
            // arrays for the next spawn.
            while self.rungs.last().is_some_and(|r| r.count == 0) {
                let rung = self.rungs.pop().expect("just checked");
                if self.spare_rungs.len() < LADDER_MAX_RUNGS {
                    self.spare_rungs.push(rung.buckets);
                }
            }
            let Some(rung) = self.rungs.last_mut() else {
                if self.top.is_empty() {
                    return; // truly empty
                }
                self.spawn_from_top(reap);
                continue;
            };
            while rung.buckets[rung.cur].is_empty() {
                rung.cur += 1;
            }
            let width = rung.width;
            let b_start = rung.start + rung.cur as u64 * width;
            self.transfer.clear();
            self.transfer.append(&mut rung.buckets[rung.cur]);
            rung.cur += 1;
            rung.count -= self.transfer.len();
            let before = self.transfer.len();
            self.transfer.retain(|t| !reap(t.key));
            self.len -= before - self.transfer.len();
            let n = self.transfer.len();
            if n > LADDER_BOTTOM_THRESH && width > 1 && self.rungs.len() < LADDER_MAX_RUNGS {
                // Overcrowded bucket: refine it into a finer rung instead of
                // paying an oversized sort.  The new width at least halves
                // (n >= 2), so refinement terminates at width 1 — a pure tie
                // bucket — which is always sorted directly.  The refined
                // rung owns exactly the source bucket's interval: its
                // rounded-up coverage may overhang it, and routing by the
                // overhang would deliver late pushes ahead of events still
                // queued in this rung's later buckets.
                let new_width = width.div_ceil(n as u64).max(1);
                let nbuckets = (width.div_ceil(new_width) as usize).max(1);
                self.spawn_rung(
                    b_start,
                    new_width,
                    nbuckets,
                    b_start as u128 + width as u128,
                );
                continue;
            }
            // Sort the chunk ascending; the cursor fires it front to back.
            self.transfer.sort_unstable_by_key(|t| t.sort_key());
            std::mem::swap(&mut self.bottom, &mut self.transfer);
            self.bottom_cur = 0;
        }
    }

    #[inline]
    fn peek(&mut self, reap: &mut dyn FnMut(EventKey) -> bool) -> Option<Ticket> {
        self.ensure_bottom(reap);
        self.bottom.get(self.bottom_cur).copied()
    }

    #[inline]
    fn pop(&mut self, reap: &mut dyn FnMut(EventKey) -> bool) -> Option<Ticket> {
        self.ensure_bottom(reap);
        let ticket = *self.bottom.get(self.bottom_cur)?;
        self.bottom_cur += 1;
        if self.bottom_cur == self.bottom.len() {
            self.bottom.clear();
            self.bottom_cur = 0;
        }
        self.len -= 1;
        Some(ticket)
    }

    /// Eagerly drops tombstoned tickets from every tier.  Dropping a ticket
    /// never reorders the survivors, so the FIFO contract is unaffected.
    fn compact(&mut self, reap: &mut dyn FnMut(EventKey) -> bool) {
        let mut dropped = 0usize;
        let before = self.top.len();
        self.top.retain(|t| !reap(t.key));
        dropped += before - self.top.len();
        if let (Some(min), Some(max)) = (
            self.top.iter().map(Ticket::time_ns).min(),
            self.top.iter().map(Ticket::time_ns).max(),
        ) {
            self.top_min = min;
            self.top_max = max;
        }
        for rung in &mut self.rungs {
            let cur = rung.cur;
            for bucket in &mut rung.buckets[cur..] {
                let before = bucket.len();
                bucket.retain(|t| !reap(t.key));
                let gone = before - bucket.len();
                rung.count -= gone;
                dropped += gone;
            }
        }
        // The consumed prefix of `bottom` is spent tickets kept only so the
        // cursor stays cheap; drop it so the retain sees the live region.
        self.bottom.drain(..self.bottom_cur);
        self.bottom_cur = 0;
        let before = self.bottom.len();
        self.bottom.retain(|t| !reap(t.key));
        dropped += before - self.bottom.len();
        self.len -= dropped;
    }

    fn clear(&mut self) {
        self.top.clear();
        self.rungs.clear();
        self.bottom.clear();
        self.bottom_cur = 0;
        self.transfer.clear();
        self.top_start = 0;
        self.len = 0;
    }
}

/// The selectable priority structure over tickets.
enum TicketQueue {
    Heap(BinaryHeap<HeapTicket>),
    Calendar(CalendarQueue),
    Ladder(LadderQueue),
}

impl TicketQueue {
    fn new(kind: QueueKind, cap: usize) -> Self {
        match kind {
            QueueKind::BinaryHeap => TicketQueue::Heap(BinaryHeap::with_capacity(cap)),
            QueueKind::Calendar => TicketQueue::Calendar(CalendarQueue::new()),
            QueueKind::Ladder => TicketQueue::Ladder(LadderQueue::new()),
        }
    }

    fn kind(&self) -> QueueKind {
        match self {
            TicketQueue::Heap(_) => QueueKind::BinaryHeap,
            TicketQueue::Calendar(_) => QueueKind::Calendar,
            TicketQueue::Ladder(_) => QueueKind::Ladder,
        }
    }

    /// Tickets currently queued, including tombstones awaiting collection.
    fn len(&self) -> usize {
        match self {
            TicketQueue::Heap(h) => h.len(),
            TicketQueue::Calendar(c) => c.len,
            TicketQueue::Ladder(l) => l.len,
        }
    }

    #[inline]
    fn push(&mut self, ticket: Ticket, reap: &mut dyn FnMut(EventKey) -> bool) {
        match self {
            TicketQueue::Heap(h) => h.push(HeapTicket(ticket)),
            TicketQueue::Calendar(c) => c.push(ticket, reap),
            TicketQueue::Ladder(l) => l.push(ticket),
        }
    }

    #[inline]
    fn pop(&mut self, reap: &mut dyn FnMut(EventKey) -> bool) -> Option<Ticket> {
        match self {
            TicketQueue::Heap(h) => h.pop().map(|t| t.0),
            TicketQueue::Calendar(c) => c.pop(reap),
            TicketQueue::Ladder(l) => l.pop(reap),
        }
    }

    #[inline]
    fn peek(&mut self, reap: &mut dyn FnMut(EventKey) -> bool) -> Option<Ticket> {
        match self {
            TicketQueue::Heap(h) => h.peek().map(|t| t.0),
            TicketQueue::Calendar(c) => c.peek(),
            TicketQueue::Ladder(l) => l.peek(reap),
        }
    }

    fn clear(&mut self) {
        match self {
            TicketQueue::Heap(h) => h.clear(),
            TicketQueue::Calendar(c) => c.clear(),
            TicketQueue::Ladder(l) => l.clear(),
        }
    }

    /// Eagerly compacts tombstoned tickets out of the structure (see
    /// [`EventQueue::reap`]).  The heap is rebuilt from its retained
    /// tickets (heapify is O(n), and pop order is a total order on the
    /// packed key, so the rebuild cannot perturb delivery); the calendar
    /// reuses its resize transfer at the current bucket count; the ladder
    /// retains each tier in place.
    fn compact(&mut self, reap: &mut dyn FnMut(EventKey) -> bool) {
        match self {
            TicketQueue::Heap(h) => {
                let mut tickets = std::mem::take(h).into_vec();
                tickets.retain(|t| !reap(t.0.key));
                *h = BinaryHeap::from(tickets);
            }
            TicketQueue::Calendar(c) => {
                let n = c.buckets.len();
                c.resize(n, reap);
            }
            TicketQueue::Ladder(l) => l.compact(reap),
        }
    }

    fn reserve(&mut self, additional: usize) {
        if let TicketQueue::Heap(h) = self {
            h.reserve(additional);
        }
        // The calendar and ladder size themselves from their populations;
        // nothing to do.
    }
}

// ---------------------------------------------------------------------------
// EventQueue: store + tickets behind the original API
// ---------------------------------------------------------------------------

/// A scheduled event popped from the queue.
#[derive(Debug, PartialEq, Eq)]
pub struct Scheduled<E> {
    /// Virtual instant at which the event fires.
    pub time: SimTime,
    /// The event payload.
    pub payload: E,
}

/// Min-queue of events ordered by firing time, FIFO among equal times.
///
/// Payloads live in an [`EventStore`] arena; the priority structure (chosen
/// by [`QueueKind`]) orders compact tickets.  See the module docs for the
/// FIFO ordering contract.
pub struct EventQueue<E> {
    store: EventStore<E>,
    tickets: TicketQueue,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue over a binary heap.
    pub fn new() -> Self {
        Self::with_kind(QueueKind::BinaryHeap)
    }

    /// Creates an empty queue over the given priority structure.
    pub fn with_kind(kind: QueueKind) -> Self {
        EventQueue {
            store: EventStore::new(),
            tickets: TicketQueue::new(kind, 0),
            next_seq: 0,
        }
    }

    /// Creates an empty binary-heap queue with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self::with_capacity_and_kind(cap, QueueKind::BinaryHeap)
    }

    /// Creates an empty queue with pre-allocated capacity over the given
    /// priority structure.
    pub fn with_capacity_and_kind(cap: usize, kind: QueueKind) -> Self {
        EventQueue {
            store: EventStore::with_capacity(cap),
            tickets: TicketQueue::new(kind, cap),
            next_seq: 0,
        }
    }

    /// The priority structure in use.
    pub fn kind(&self) -> QueueKind {
        self.tickets.kind()
    }

    /// Reserves capacity for at least `additional` more events, so bursts of
    /// scheduling (e.g. a job sweep enqueueing its whole arrival process)
    /// do not regrow the structures incrementally.
    pub fn reserve(&mut self, additional: usize) {
        self.store.reserve(additional);
        self.tickets.reserve(additional);
    }

    /// Current allocated payload capacity (the [`EventStore`]'s slot count —
    /// the payload arena is the allocation that matters for both queue
    /// kinds; the heap's ticket buffer tracks it and the calendar sizes
    /// itself from its population).
    pub fn capacity(&self) -> usize {
        self.store.capacity()
    }

    /// Schedules `payload` to fire at `time` and returns the key under which
    /// it can be [`EventQueue::cancel`]led while still pending.
    #[inline]
    pub fn push(&mut self, time: SimTime, payload: E) -> EventKey {
        let seq = self.next_seq;
        self.next_seq += 1;
        let key = self.store.insert(payload);
        let store = &mut self.store;
        self.tickets
            .push(Ticket::new(time, seq, key), &mut |k| store.reap(k));
        key
    }

    /// Schedules a batch of events in iteration order, appending each
    /// event's key to `keys`.  Equivalent to calling [`EventQueue::push`]
    /// per item — the batch occupies consecutive sequence numbers, so FIFO
    /// ties respect iteration order — but payload-store capacity is
    /// reserved up front from the iterator's size hint.  This is the
    /// scatter-back splice of a sharded simulation: a barrier that brokered
    /// a cross-shard job pushes the job's completion events into each
    /// owning shard's timeline in one call (see the module docs' *Parallel
    /// shards* section).
    pub fn push_batch(
        &mut self,
        events: impl IntoIterator<Item = (SimTime, E)>,
        keys: &mut Vec<EventKey>,
    ) {
        let events = events.into_iter();
        let (lower, _) = events.size_hint();
        self.store.reserve(lower);
        keys.reserve(lower);
        for (time, payload) in events {
            keys.push(self.push(time, payload));
        }
    }

    /// Revokes a pending event, returning its payload.  Returns `None` if
    /// the key is stale — the event already fired, was already cancelled, or
    /// the queue was cleared — making cancel-after-fire races harmless.
    ///
    /// The event's ticket stays in the priority structure as a tombstone
    /// until its firing time comes up; see the module docs for why this
    /// preserves the FIFO ordering contract.
    #[inline]
    pub fn cancel(&mut self, key: EventKey) -> Option<E> {
        self.store.cancel(key)
    }

    /// True if `key` still refers to a pending event.
    pub fn is_pending(&self, key: EventKey) -> bool {
        self.store.is_live(key)
    }

    /// Removes and returns the earliest pending event, if any.  Tombstones
    /// left by cancellation are discarded (and their slots recycled) on the
    /// way.
    #[inline]
    pub fn pop(&mut self) -> Option<Scheduled<E>> {
        let store = &mut self.store;
        while let Some(t) = self.tickets.pop(&mut |k| store.reap(k)) {
            if let Some(payload) = store.resolve(t.key) {
                return Some(Scheduled {
                    time: t.time(),
                    payload,
                });
            }
        }
        None
    }

    /// Firing time of the earliest pending event, if any.  Tombstoned
    /// tickets encountered at the front are discarded eagerly, so the
    /// returned time always belongs to an event `pop` would deliver.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        let store = &mut self.store;
        while let Some(t) = self.tickets.peek(&mut |k| store.reap(k)) {
            if store.is_live(t.key) {
                return Some(t.time());
            }
            let t = self
                .tickets
                .pop(&mut |k| store.reap(k))
                .expect("peek found a ticket");
            let cancelled = store.resolve(t.key);
            debug_assert!(cancelled.is_none(), "live ticket discarded by peek");
        }
        None
    }

    /// Number of pending events (cancelled events no longer count, even
    /// while their tombstoned tickets await collection).
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// Number of pending (live) events — an explicit-name alias of
    /// [`EventQueue::len`] for callers contrasting it with
    /// [`EventQueue::queued_len`].
    pub fn live_len(&self) -> usize {
        self.store.len()
    }

    /// Number of tickets currently queued, *including* tombstones from
    /// cancelled events that have not been collected yet (at their firing
    /// time, or earlier when a calendar/ladder bucket transfer compacts
    /// them).  `queued_len() - live_len()` is the dead weight a
    /// cancel-heavy workload is currently carrying.
    pub fn queued_len(&self) -> usize {
        self.tickets.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Eagerly compacts tombstones: every ticket whose event was cancelled
    /// is dropped from the priority structure and its payload slot
    /// recycled, without waiting for the ticket's nominal firing time (or
    /// the next bucket transfer).  Returns the number of dead tickets
    /// collected.
    ///
    /// Compaction is outcome-invariant — dropping a dead ticket can never
    /// reorder the surviving events (see the module docs on cancellation) —
    /// so a driver may call this on any cadence.  Long cancellation-heavy
    /// traces call it when `queued_len() - live_len()` exceeds a documented
    /// threshold, bounding the dead weight the structure carries.  Cost is
    /// O(queued): the heap re-heapifies, the calendar resizes in place, the
    /// ladder retains each tier.
    pub fn reap(&mut self) -> usize {
        let before = self.tickets.len();
        let store = &mut self.store;
        self.tickets.compact(&mut |k| store.reap(k));
        before - self.tickets.len()
    }

    /// Discards all pending events.
    pub fn clear(&mut self) {
        self.tickets.clear();
        self.store.clear();
    }

    /// Total number of events ever scheduled on this queue.
    pub fn scheduled_count(&self) -> u64 {
        self.next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngutil::seeded;
    use crate::time::SimDuration;
    use rand::Rng;

    const KINDS: [QueueKind; 3] = [
        QueueKind::BinaryHeap,
        QueueKind::Calendar,
        QueueKind::Ladder,
    ];

    #[test]
    fn pops_in_time_order() {
        for kind in KINDS {
            let mut q = EventQueue::with_kind(kind);
            q.push(SimTime::from_millis(30), "c");
            q.push(SimTime::from_millis(10), "a");
            q.push(SimTime::from_millis(20), "b");
            let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|s| s.payload)).collect();
            assert_eq!(order, vec!["a", "b", "c"], "{kind:?}");
        }
    }

    #[test]
    fn ties_are_fifo() {
        for kind in KINDS {
            let mut q = EventQueue::with_kind(kind);
            let t = SimTime::from_secs(1);
            for i in 0..100 {
                q.push(t, i);
            }
            let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|s| s.payload)).collect();
            assert_eq!(order, (0..100).collect::<Vec<_>>(), "{kind:?}");
        }
    }

    #[test]
    fn ties_are_fifo_across_resizes_and_interleaving() {
        // Regression test for the FIFO contract (see module docs): pushes at
        // a handful of distinct instants interleaved with pops, in volumes
        // that force the calendar queue through several grow/shrink resizes,
        // must still drain each instant's events in push order.
        for kind in KINDS {
            let mut q = EventQueue::with_kind(kind);
            let mut next_id = 0u64;
            let mut drained: Vec<(SimTime, u64)> = Vec::new();
            // Three waves of pushes with partial drains between them.
            for wave in 0..3u64 {
                for i in 0..400u64 {
                    // Few distinct times -> massive tie groups.
                    let t = SimTime::from_millis(wave * 10 + (i % 4));
                    q.push(t, (t, next_id));
                    next_id += 1;
                }
                for _ in 0..300 {
                    drained.push(q.pop().unwrap().payload);
                }
            }
            while let Some(s) = q.pop() {
                drained.push(s.payload);
            }
            assert_eq!(drained.len(), 1200, "{kind:?}");
            // Within each instant, ids must be strictly increasing.
            let mut last_id_at: std::collections::HashMap<SimTime, u64> = Default::default();
            let mut last_time = SimTime::ZERO;
            for (t, id) in drained {
                assert!(t >= last_time, "{kind:?}: time went backwards");
                last_time = t;
                if let Some(&prev) = last_id_at.get(&t) {
                    assert!(prev < id, "{kind:?}: FIFO violated at {t}");
                }
                last_id_at.insert(t, id);
            }
        }
    }

    #[test]
    fn peek_and_len() {
        for kind in KINDS {
            let mut q = EventQueue::with_kind(kind);
            assert!(q.is_empty());
            assert_eq!(q.peek_time(), None);
            q.push(SimTime::from_secs(5), ());
            q.push(SimTime::from_secs(2), ());
            assert_eq!(q.len(), 2);
            assert_eq!(q.peek_time(), Some(SimTime::from_secs(2)));
            q.clear();
            assert!(q.is_empty());
            assert_eq!(q.scheduled_count(), 2);
        }
    }

    #[test]
    fn interleaved_push_pop_preserves_order() {
        for kind in KINDS {
            let mut q = EventQueue::with_kind(kind);
            let base = SimTime::ZERO;
            q.push(base + SimDuration::from_millis(5), 5);
            q.push(base + SimDuration::from_millis(1), 1);
            assert_eq!(q.pop().unwrap().payload, 1);
            q.push(base + SimDuration::from_millis(3), 3);
            q.push(base + SimDuration::from_millis(4), 4);
            assert_eq!(q.pop().unwrap().payload, 3);
            assert_eq!(q.pop().unwrap().payload, 4);
            assert_eq!(q.pop().unwrap().payload, 5);
            assert!(q.pop().is_none());
        }
    }

    #[test]
    fn reserve_grows_capacity_without_losing_events() {
        let mut q = EventQueue::with_capacity(2);
        q.push(SimTime::from_secs(2), "b");
        q.push(SimTime::from_secs(1), "a");
        assert!(q.capacity() >= 2);
        q.reserve(50);
        assert!(q.capacity() >= 52);
        assert_eq!(q.pop().unwrap().payload, "a");
        assert_eq!(q.pop().unwrap().payload, "b");
    }

    #[test]
    fn scheduled_struct_reports_time() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(42), "x");
        let s = q.pop().unwrap();
        assert_eq!(s.time, SimTime::from_micros(42));
        assert_eq!(s.payload, "x");
    }

    #[test]
    fn store_recycles_slots() {
        let mut store = EventStore::with_capacity(4);
        let a = store.insert("a");
        let b = store.insert("b");
        assert_eq!(store.len(), 2);
        assert_eq!(store.take(a), "a");
        let c = store.insert("c");
        // The freed slot is reused: no growth past the high-water mark.
        assert_eq!(c.index(), a.index());
        assert_eq!(store.take(b), "b");
        assert_eq!(store.take(c), "c");
        assert!(store.is_empty());
    }

    #[test]
    #[should_panic(expected = "taken twice")]
    fn store_take_twice_panics() {
        let mut store = EventStore::new();
        let k = store.insert(7);
        store.take(k);
        store.take(k);
    }

    #[test]
    fn reserve_guarantees_capacity_for_a_full_burst() {
        // Regression: reserve must not double-count the Vec's length-beyond-
        // live slack — a burst of `additional` inserts after reserve may not
        // reallocate, even when no slots are vacant.
        let mut store = EventStore::with_capacity(4);
        let keys: Vec<_> = (0..4).map(|i| store.insert(i)).collect();
        store.take(keys[0]);
        store.take(keys[1]);
        let _ = store.insert(100); // refill one vacant slot: 3 live, 1 vacant
        store.reserve(300);
        let cap = store.capacity();
        for i in 0..300 {
            store.insert(i);
        }
        assert_eq!(
            store.capacity(),
            cap,
            "burst inserts reallocated after reserve"
        );
        assert_eq!(store.len(), 303);
    }

    #[test]
    fn queue_high_water_mark_is_stable() {
        let mut q: EventQueue<u64> = EventQueue::with_capacity(64);
        for round in 0..10u64 {
            for i in 0..64 {
                q.push(SimTime::from_millis(round * 100 + i), i);
            }
            while q.pop().is_some() {}
        }
        // Ten rounds of 64 events never grow the store past its capacity.
        assert_eq!(q.capacity(), 64);
        assert_eq!(q.scheduled_count(), 640);
    }

    #[test]
    fn cancel_before_fire_removes_the_event() {
        for kind in KINDS {
            let mut q = EventQueue::with_kind(kind);
            let _a = q.push(SimTime::from_millis(1), "a");
            let b = q.push(SimTime::from_millis(2), "b");
            let _c = q.push(SimTime::from_millis(3), "c");
            assert!(q.is_pending(b));
            assert_eq!(q.cancel(b), Some("b"), "{kind:?}");
            assert!(!q.is_pending(b));
            assert_eq!(q.len(), 2, "{kind:?}");
            let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|s| s.payload)).collect();
            assert_eq!(order, vec!["a", "c"], "{kind:?}");
        }
    }

    #[test]
    fn cancel_after_fire_is_a_noop() {
        for kind in KINDS {
            let mut q = EventQueue::with_kind(kind);
            let a = q.push(SimTime::from_millis(1), "a");
            assert_eq!(q.pop().unwrap().payload, "a");
            // The key is stale: cancelling it must return None and leave the
            // queue untouched.
            assert_eq!(q.cancel(a), None, "{kind:?}");
            assert!(q.is_empty());
            // Double cancel is equally harmless.
            let b = q.push(SimTime::from_millis(2), "b");
            assert_eq!(q.cancel(b), Some("b"));
            assert_eq!(q.cancel(b), None, "{kind:?}");
            assert!(q.pop().is_none(), "{kind:?}");
        }
    }

    #[test]
    fn cancelled_key_cannot_revoke_a_recycled_slot() {
        for kind in KINDS {
            let mut q = EventQueue::with_kind(kind);
            let a = q.push(SimTime::from_millis(1), "a");
            assert_eq!(q.pop().unwrap().payload, "a");
            // The new event recycles a's slot (same index, new generation).
            let b = q.push(SimTime::from_millis(2), "b");
            assert_eq!(b.index(), a.index());
            assert_ne!(b.generation(), a.generation());
            // Cancelling the stale key must not revoke b.
            assert_eq!(q.cancel(a), None, "{kind:?}");
            assert_eq!(q.pop().unwrap().payload, "b", "{kind:?}");
        }
    }

    #[test]
    fn cancel_preserves_fifo_around_tombstones() {
        // The FIFO contract (module docs): cancelling an event must not
        // reorder the survivors of its tie group, even across interleaved
        // pushes, pops, and calendar resizes.
        for kind in KINDS {
            let mut q = EventQueue::with_kind(kind);
            let t = SimTime::from_secs(1);
            let keys: Vec<_> = (0..200usize).map(|i| q.push(t, i)).collect();
            // Tombstone every third event, including the very first.
            for (i, &k) in keys.iter().enumerate() {
                if i % 3 == 0 {
                    assert_eq!(q.cancel(k), Some(i));
                }
            }
            // Interleave a later tie group before draining.
            let t2 = SimTime::from_secs(2);
            let late_keys: Vec<_> = (200..260usize).map(|i| q.push(t2, i)).collect();
            assert_eq!(q.cancel(late_keys[0]), Some(200));
            let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|s| s.payload)).collect();
            let expected: Vec<usize> = (0..200).filter(|i| i % 3 != 0).chain(201..260).collect();
            assert_eq!(order, expected, "{kind:?}");
        }
    }

    #[test]
    fn peek_time_skips_tombstones() {
        for kind in KINDS {
            let mut q = EventQueue::with_kind(kind);
            let a = q.push(SimTime::from_millis(1), "a");
            q.push(SimTime::from_millis(5), "b");
            assert_eq!(q.peek_time(), Some(SimTime::from_millis(1)));
            q.cancel(a);
            // peek must report b's time, not the tombstone's.
            assert_eq!(q.peek_time(), Some(SimTime::from_millis(5)), "{kind:?}");
            assert_eq!(q.pop().unwrap().payload, "b");
            assert_eq!(q.peek_time(), None);
        }
    }

    #[test]
    fn calendar_agrees_with_heap_on_random_workloads_with_cancellation() {
        // Heap/calendar equivalence under a workload that cancels a third of
        // what it schedules: both kinds must deliver identical survivors.
        for trial in 0..4u64 {
            let mut rng = seeded(0xCA2CE1 + trial);
            let mut heap = EventQueue::with_kind(QueueKind::BinaryHeap);
            let mut cal = EventQueue::with_kind(QueueKind::Calendar);
            let mut pending: Vec<(EventKey, EventKey)> = Vec::new();
            let mut floor = 0u64;
            for op in 0..3_000u32 {
                let roll = rng.gen_range(0u32..100);
                if roll < 55 || heap.is_empty() {
                    let t = floor + rng.gen_range(0u64..50_000_000);
                    let hk = heap.push(SimTime::from_nanos(t), op);
                    let ck = cal.push(SimTime::from_nanos(t), op);
                    pending.push((hk, ck));
                } else if roll < 75 && !pending.is_empty() {
                    let idx = rng.gen_range(0..pending.len());
                    let (hk, ck) = pending.swap_remove(idx);
                    // Keys may be stale (already fired); both queues must
                    // agree on whether the cancel took effect.
                    assert_eq!(heap.cancel(hk), cal.cancel(ck), "trial {trial}");
                } else {
                    let a = heap.pop();
                    let b = cal.pop();
                    assert_eq!(
                        a.as_ref().map(|s| (s.time, s.payload)),
                        b.as_ref().map(|s| (s.time, s.payload)),
                        "trial {trial}"
                    );
                    if let Some(s) = a {
                        floor = s.time.as_nanos();
                    }
                }
                assert_eq!(heap.len(), cal.len(), "trial {trial}");
            }
            while let Some(a) = heap.pop() {
                let b = cal.pop().expect("calendar drained early");
                assert_eq!((a.time, a.payload), (b.time, b.payload), "trial {trial}");
            }
            assert!(cal.pop().is_none());
        }
    }

    #[test]
    fn calendar_agrees_with_heap_on_random_workloads() {
        for trial in 0..8u64 {
            let mut rng = seeded(0xCA1E0D0 + trial);
            let mut heap = EventQueue::with_kind(QueueKind::BinaryHeap);
            let mut cal = EventQueue::with_kind(QueueKind::Calendar);
            let mut heap_out = Vec::new();
            let mut cal_out = Vec::new();
            let mut floor = 0u64; // pops forbid scheduling in the past
            for op in 0..4_000u32 {
                if rng.gen_range(0u32..100) < 65 || heap.is_empty() {
                    // Mix of clustered and spread-out times, always >= floor.
                    let t = floor
                        + match rng.gen_range(0u32..3) {
                            0 => rng.gen_range(0u64..5),
                            1 => rng.gen_range(0u64..10_000),
                            _ => rng.gen_range(0u64..100_000_000),
                        };
                    heap.push(SimTime::from_nanos(t), op);
                    cal.push(SimTime::from_nanos(t), op);
                } else {
                    let a = heap.pop().unwrap();
                    let b = cal.pop().unwrap();
                    assert_eq!(a.time, b.time, "trial {trial}");
                    assert_eq!(a.payload, b.payload, "trial {trial}");
                    floor = a.time.as_nanos();
                    heap_out.push(a.payload);
                    cal_out.push(b.payload);
                }
            }
            while let (Some(a), Some(b)) = (heap.pop(), cal.pop()) {
                assert_eq!((a.time, a.payload), (b.time, b.payload), "trial {trial}");
            }
            assert!(heap.is_empty() && cal.is_empty());
        }
    }

    #[test]
    fn calendar_handles_sparse_then_dense_populations() {
        let mut q = EventQueue::with_kind(QueueKind::Calendar);
        // Sparse: a few events spread over hours force year-jumping.
        for h in [3u64, 1, 9, 7] {
            q.push(SimTime::from_secs(h * 3600), h);
        }
        assert_eq!(q.pop().unwrap().payload, 1);
        // Dense burst far earlier than the sparse tail (still after last pop).
        for i in 0..1000u64 {
            q.push(
                SimTime::from_secs(2 * 3600) + SimDuration::from_millis(i),
                100 + i,
            );
        }
        assert_eq!(q.len(), 1003);
        let mut last = SimTime::ZERO;
        let mut popped = 0;
        while let Some(s) = q.pop() {
            assert!(s.time >= last);
            last = s.time;
            popped += 1;
        }
        assert_eq!(popped, 1003);
    }

    #[test]
    fn default_kind_is_binary_heap() {
        let q: EventQueue<()> = EventQueue::new();
        assert_eq!(q.kind(), QueueKind::BinaryHeap);
        let c: EventQueue<()> = EventQueue::with_capacity_and_kind(10, QueueKind::Calendar);
        assert_eq!(c.kind(), QueueKind::Calendar);
        let l: EventQueue<()> = EventQueue::with_kind(QueueKind::Ladder);
        assert_eq!(l.kind(), QueueKind::Ladder);
    }

    #[test]
    fn ladder_rung_spawn_preserves_fifo_across_a_dense_tie_cluster() {
        // A dense cluster (far larger than the bottom-tier threshold) with
        // massive tie groups, pushed on top of a sparse tail: consuming the
        // cluster forces rung spawns (the cluster bucket is overcrowded) and
        // rung collapses (each refined rung drains), and the tie groups must
        // still drain in push order through every transfer.
        let mut q = EventQueue::with_kind(QueueKind::Ladder);
        // Sparse tail first, so the cluster lands mid-structure.
        for h in [5u64, 9, 2, 7] {
            q.push(SimTime::from_secs(h * 3600), (h * 3600 * 1000, u64::MAX));
        }
        let mut id = 0u64;
        for ms in 0..40u64 {
            for _ in 0..50 {
                // 40 instants × 50-way ties = 2000 events inside one second.
                q.push(SimTime::from_millis(3_600_000 + ms), (3_600_000 + ms, id));
                id += 1;
            }
        }
        assert_eq!(q.len(), 2004);
        let mut last = (0u64, 0u64);
        let mut popped = 0;
        while let Some(s) = q.pop() {
            let (ms, id) = s.payload;
            assert_eq!(s.time.as_nanos() / 1_000_000, ms, "payload matches time");
            assert!(
                (ms, id) > last || popped == 0,
                "order violated: {last:?} then ({ms}, {id})"
            );
            last = (ms, id);
            popped += 1;
        }
        assert_eq!(popped, 2004);
    }

    #[test]
    fn ladder_refined_rung_does_not_capture_its_overhang() {
        // Regression: a refined rung's bucket coverage is rounded up past
        // the source bucket's interval.  A push landing in that overhang
        // belongs to the *outer* rung's next bucket — routing it into the
        // refined rung delivered it ahead of earlier events still queued in
        // the outer rung (time going backwards).
        let mut q = EventQueue::with_kind(QueueKind::Ladder);
        // Dense cluster (> bottom threshold) forcing a refinement of the
        // first bucket, one event just past that bucket, one far away.
        for t in 1000..1040u64 {
            q.push(SimTime::from_nanos(t), t);
        }
        q.push(SimTime::from_nanos(3358), 3358);
        q.push(SimTime::from_nanos(100_000), 100_000);
        // First pop spawns rung 0 (bucket width 2358 over [1000, 100001))
        // and refines the crowded first bucket; its rounded-up coverage
        // overhangs [1000, 3358) slightly.
        assert_eq!(q.pop().unwrap().payload, 1000);
        // A push into the overhang must go to the outer rung, not ahead of
        // the 3358 event.
        q.push(SimTime::from_nanos(3359), 3359);
        let mut last = 0u64;
        while let Some(s) = q.pop() {
            assert!(
                s.payload >= last,
                "time went backwards: {} after {last}",
                s.payload
            );
            last = s.payload;
        }
        assert_eq!(last, 100_000);
    }

    #[test]
    fn ladder_handles_rewinds_below_the_consumed_region() {
        // After draining into the bottom tier, pushes earlier than the
        // innermost rung's consumption point must land in the bottom tier
        // (never a consumed bucket) and pop in order.
        let mut q = EventQueue::with_kind(QueueKind::Ladder);
        for i in 0..200u64 {
            q.push(SimTime::from_millis(1000 + i * 10), i);
        }
        assert_eq!(q.pop().unwrap().payload, 0);
        // Earlier than everything still pending, later than the last pop.
        q.push(SimTime::from_millis(1005), 777);
        assert_eq!(q.pop().unwrap().payload, 777);
        assert_eq!(q.pop().unwrap().payload, 1);
        let drained = std::iter::from_fn(|| q.pop()).count();
        assert_eq!(drained, 198);
    }

    #[test]
    fn live_len_and_queued_len_track_tombstones() {
        for kind in KINDS {
            let mut q = EventQueue::with_kind(kind);
            let keys: Vec<_> = (0..100u64)
                .map(|i| q.push(SimTime::from_millis(10 + i), i))
                .collect();
            for k in &keys[..40] {
                q.cancel(*k);
            }
            assert_eq!(q.live_len(), 60, "{kind:?}");
            assert_eq!(
                q.queued_len(),
                100,
                "{kind:?}: tombstoned tickets stay queued until collected"
            );
            // Popping one live event collects the 40 leading tombstones on
            // the way (they fire earlier).
            assert_eq!(q.pop().unwrap().payload, 40, "{kind:?}");
            assert_eq!(q.live_len(), 59, "{kind:?}");
            assert_eq!(q.queued_len(), 59, "{kind:?}");
        }
    }

    #[test]
    fn push_batch_preserves_fifo_and_returns_cancelable_keys() {
        for kind in KINDS {
            let mut q = EventQueue::with_kind(kind);
            let t = SimTime::from_secs(1);
            let mut keys = Vec::new();
            q.push_batch((0..50u64).map(|i| (t, i)), &mut keys);
            assert_eq!(keys.len(), 50, "{kind:?}");
            assert_eq!(q.cancel(keys[10]), Some(10), "{kind:?}");
            // The batch occupies consecutive sequence numbers: survivors of
            // the tie group drain in batch order.
            let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|s| s.payload)).collect();
            let expected: Vec<u64> = (0..50).filter(|&i| i != 10).collect();
            assert_eq!(order, expected, "{kind:?}");
        }
    }

    #[test]
    fn reap_collects_tombstones_eagerly_on_every_kind() {
        for kind in KINDS {
            let mut q = EventQueue::with_kind(kind);
            let keys: Vec<_> = (0..200u64)
                .map(|i| q.push(SimTime::from_millis(10 + i), i))
                .collect();
            for k in keys.iter().step_by(2) {
                q.cancel(*k);
            }
            assert_eq!(q.live_len(), 100, "{kind:?}");
            let dead = q.queued_len() - q.live_len();
            assert_eq!(q.reap(), dead, "{kind:?}");
            assert_eq!(q.queued_len(), 100, "{kind:?}");
            assert_eq!(q.live_len(), 100, "{kind:?}");
            // Reaping again finds nothing; survivors drain in push order.
            assert_eq!(q.reap(), 0, "{kind:?}");
            let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|s| s.payload)).collect();
            let expected: Vec<u64> = (0..200).filter(|i| i % 2 == 1).collect();
            assert_eq!(order, expected, "{kind:?}");
        }
    }

    #[test]
    fn reap_mid_drain_preserves_order_on_every_kind() {
        // Reap while the structure is mid-consumption (the ladder has live
        // rungs and a partially fired bottom chunk, the calendar a moved
        // cursor): compaction must stay outcome-invariant.
        for kind in KINDS {
            let mut q = EventQueue::with_kind(kind);
            let keys: Vec<_> = (0..500u64)
                .map(|i| q.push(SimTime::from_millis(i / 5), i))
                .collect();
            for expect in 0..100u64 {
                assert_eq!(q.pop().unwrap().payload, expect, "{kind:?}");
            }
            for k in keys[100..].iter().step_by(3) {
                q.cancel(*k);
            }
            let dead = q.queued_len() - q.live_len();
            assert!(dead > 0);
            assert_eq!(q.reap(), dead, "{kind:?}");
            assert_eq!(q.queued_len(), q.live_len(), "{kind:?}");
            let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|s| s.payload)).collect();
            let expected: Vec<u64> = (100..500).filter(|i| (i - 100) % 3 != 0).collect();
            assert_eq!(order, expected, "{kind:?}");
        }
    }

    #[test]
    fn bucket_transfers_compact_tombstones_before_firing_time() {
        // Calendar: growing the population forces a resize, which must shed
        // the tombstones even though their firing times are far away.
        let mut cal = EventQueue::with_kind(QueueKind::Calendar);
        let doomed: Vec<_> = (0..64u64)
            .map(|i| cal.push(SimTime::from_secs(1000 + i), i))
            .collect();
        for k in &doomed {
            cal.cancel(*k);
        }
        assert_eq!(cal.queued_len(), 64);
        // Enough pushes to trigger a grow-resize (len > 2 × buckets).
        for i in 0..64u64 {
            cal.push(SimTime::from_secs(2000 + i), 100 + i);
        }
        assert_eq!(cal.live_len(), 64);
        assert!(
            cal.queued_len() < 128,
            "calendar resize carried all {} tombstones",
            cal.queued_len() - cal.live_len()
        );

        // Ladder: consuming the first cluster transfers its bucket, which
        // must shed the cancelled majority without waiting for their times.
        let mut lad = EventQueue::with_kind(QueueKind::Ladder);
        let doomed: Vec<_> = (0..500u64)
            .map(|i| lad.push(SimTime::from_millis(1000 + i), i))
            .collect();
        for k in doomed.iter().skip(1) {
            lad.cancel(*k);
        }
        lad.push(SimTime::from_secs(3600), 999);
        assert_eq!(lad.queued_len(), 501);
        // The first pop spawns from top and transfers buckets: the dead
        // tickets compact away, leaving only the survivor and the tail.
        assert_eq!(lad.pop().unwrap().payload, 0);
        assert_eq!(lad.live_len(), 1);
        assert!(
            lad.queued_len() <= 2,
            "ladder transfer carried {} tombstones",
            lad.queued_len() - lad.live_len()
        );
    }

    #[test]
    fn ladder_agrees_with_heap_on_random_workloads_with_cancellation() {
        for trial in 0..4u64 {
            let mut rng = seeded(0x1ADDE2 + trial);
            let mut heap = EventQueue::with_kind(QueueKind::BinaryHeap);
            let mut lad = EventQueue::with_kind(QueueKind::Ladder);
            let mut pending: Vec<(EventKey, EventKey)> = Vec::new();
            let mut floor = 0u64;
            for op in 0..3_000u32 {
                let roll = rng.gen_range(0u32..100);
                if roll < 55 || heap.is_empty() {
                    // Heavily skewed times: most clustered tight, some far.
                    let t = floor
                        + match rng.gen_range(0u32..4) {
                            0..=2 => rng.gen_range(0u64..100_000),
                            _ => rng.gen_range(0u64..50_000_000_000),
                        };
                    let hk = heap.push(SimTime::from_nanos(t), op);
                    let lk = lad.push(SimTime::from_nanos(t), op);
                    pending.push((hk, lk));
                } else if roll < 75 && !pending.is_empty() {
                    let idx = rng.gen_range(0..pending.len());
                    let (hk, lk) = pending.swap_remove(idx);
                    assert_eq!(heap.cancel(hk), lad.cancel(lk), "trial {trial}");
                } else {
                    let a = heap.pop();
                    let b = lad.pop();
                    assert_eq!(
                        a.as_ref().map(|s| (s.time, s.payload)),
                        b.as_ref().map(|s| (s.time, s.payload)),
                        "trial {trial}"
                    );
                    if let Some(s) = a {
                        floor = s.time.as_nanos();
                    }
                }
                assert_eq!(heap.len(), lad.len(), "trial {trial}");
            }
            while let Some(a) = heap.pop() {
                let b = lad.pop().expect("ladder drained early");
                assert_eq!((a.time, a.payload), (b.time, b.payload), "trial {trial}");
            }
            assert!(lad.pop().is_none());
        }
    }
}
