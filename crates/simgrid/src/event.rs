//! Time-ordered event queue with FIFO tie-breaking.
//!
//! The queue is generic over the payload type so that the closure-based
//! [`crate::engine::Engine`] and the typed actor network used by the overlay
//! crate can share the same ordering semantics: events scheduled for the same
//! virtual instant are delivered in the order they were scheduled.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An entry in the queue: payload plus its firing time and insertion sequence.
struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (then lowest seq)
        // entry is popped first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A scheduled event popped from the queue.
#[derive(Debug, PartialEq, Eq)]
pub struct Scheduled<E> {
    /// Virtual instant at which the event fires.
    pub time: SimTime,
    /// The event payload.
    pub payload: E,
}

/// Min-queue of events ordered by firing time, FIFO among equal times.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Creates an empty queue with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
        }
    }

    /// Reserves capacity for at least `additional` more events, so bursts of
    /// scheduling (e.g. a job sweep enqueueing its whole arrival process)
    /// do not regrow the heap incrementally.
    pub fn reserve(&mut self, additional: usize) {
        self.heap.reserve(additional);
    }

    /// Current allocated capacity of the underlying heap.
    pub fn capacity(&self) -> usize {
        self.heap.capacity()
    }

    /// Schedules `payload` to fire at `time`.
    #[inline]
    pub fn push(&mut self, time: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, payload });
    }

    /// Removes and returns the earliest event, if any.
    #[inline]
    pub fn pop(&mut self) -> Option<Scheduled<E>> {
        self.heap.pop().map(|e| Scheduled {
            time: e.time,
            payload: e.payload,
        })
    }

    /// Firing time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Discards all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// Total number of events ever scheduled on this queue.
    pub fn scheduled_count(&self) -> u64 {
        self.next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(30), "c");
        q.push(SimTime::from_millis(10), "a");
        q.push(SimTime::from_millis(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|s| s.payload)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|s| s.payload)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_secs(5), ());
        q.push(SimTime::from_secs(2), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2)));
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.scheduled_count(), 2);
    }

    #[test]
    fn interleaved_push_pop_preserves_order() {
        let mut q = EventQueue::new();
        let base = SimTime::ZERO;
        q.push(base + SimDuration::from_millis(5), 5);
        q.push(base + SimDuration::from_millis(1), 1);
        assert_eq!(q.pop().unwrap().payload, 1);
        q.push(base + SimDuration::from_millis(3), 3);
        q.push(base + SimDuration::from_millis(4), 4);
        assert_eq!(q.pop().unwrap().payload, 3);
        assert_eq!(q.pop().unwrap().payload, 4);
        assert_eq!(q.pop().unwrap().payload, 5);
        assert!(q.pop().is_none());
    }

    #[test]
    fn reserve_grows_capacity_without_losing_events() {
        let mut q = EventQueue::with_capacity(2);
        q.push(SimTime::from_secs(2), "b");
        q.push(SimTime::from_secs(1), "a");
        assert!(q.capacity() >= 2);
        q.reserve(50);
        assert!(q.capacity() >= 52);
        assert_eq!(q.pop().unwrap().payload, "a");
        assert_eq!(q.pop().unwrap().payload, "b");
    }

    #[test]
    fn scheduled_struct_reports_time() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(42), "x");
        let s = q.pop().unwrap();
        assert_eq!(s.time, SimTime::from_micros(42));
        assert_eq!(s.payload, "x");
    }
}
