//! Grid topology model: sites, clusters, hosts and the inter-site network
//! characteristics (RTT and bandwidth).
//!
//! The model mirrors how the paper describes Grid'5000: a handful of *sites*
//! (Nancy, Lyon, …), each hosting one or two *clusters* of homogeneous
//! *hosts* with a given number of CPUs and cores, connected by a
//! wide-area network whose round-trip times are what the P2P-MPI peers
//! measure and rank.

use crate::time::SimDuration;
use std::fmt;

/// Identifier of a site (dense index into [`Topology::sites`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SiteId(pub usize);

/// Identifier of a cluster (dense index into [`Topology::clusters`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClusterId(pub usize);

/// Identifier of a host (dense index into [`Topology::hosts`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HostId(pub usize);

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "site#{}", self.0)
    }
}
impl fmt::Display for ClusterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cluster#{}", self.0)
    }
}
impl fmt::Display for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "host#{}", self.0)
    }
}

/// A geographical site (one Grid'5000 campus).
#[derive(Debug, Clone)]
pub struct Site {
    /// Dense identifier.
    pub id: SiteId,
    /// Human-readable name, e.g. `"nancy"`.
    pub name: String,
}

/// A homogeneous cluster of hosts inside a site (one row of Table 1).
#[derive(Debug, Clone)]
pub struct Cluster {
    /// Dense identifier.
    pub id: ClusterId,
    /// Cluster name, e.g. `"grelon"`.
    pub name: String,
    /// Site the cluster belongs to.
    pub site: SiteId,
    /// CPU model string, e.g. `"Intel Xeon 5110"`.
    pub cpu_model: String,
    /// Number of nodes (hosts).
    pub nodes: usize,
    /// Total number of CPU sockets in the cluster.
    pub cpus: usize,
    /// Total number of cores in the cluster.
    pub cores: usize,
}

impl Cluster {
    /// Cores per node, as used for the owner's `P` setting in the experiment.
    pub fn cores_per_node(&self) -> usize {
        self.cores.checked_div(self.nodes).unwrap_or(0)
    }
}

/// One physical machine able to host MPI processes.
#[derive(Debug, Clone)]
pub struct Host {
    /// Dense identifier.
    pub id: HostId,
    /// Host name, e.g. `"grelon-17"`.
    pub name: String,
    /// Site the host belongs to.
    pub site: SiteId,
    /// Cluster the host belongs to.
    pub cluster: ClusterId,
    /// Number of cores (the experiment sets the owner preference `P` to this).
    pub cores: usize,
    /// Per-core compute rate in floating-point/integer operations per second.
    pub ops_per_sec: f64,
    /// Installed memory in bytes.
    pub mem_bytes: u64,
}

/// Fully-built topology: immutable once constructed.
#[derive(Debug, Clone)]
pub struct Topology {
    sites: Vec<Site>,
    clusters: Vec<Cluster>,
    hosts: Vec<Host>,
    /// Symmetric site-to-site RTT matrix; the diagonal holds the intra-site RTT.
    rtt: Vec<Vec<SimDuration>>,
    /// Symmetric site-to-site bandwidth matrix in bits per second; the
    /// diagonal holds the intra-site (cluster switch) bandwidth.
    bw_bps: Vec<Vec<f64>>,
    /// RTT between two processes on the same host (loopback / shared memory).
    intra_host_rtt: SimDuration,
    /// Per-host NIC bandwidth in bits per second (caps all transfers).
    nic_bw_bps: f64,
}

impl Topology {
    /// All sites.
    pub fn sites(&self) -> &[Site] {
        &self.sites
    }

    /// All clusters.
    pub fn clusters(&self) -> &[Cluster] {
        &self.clusters
    }

    /// All hosts.
    pub fn hosts(&self) -> &[Host] {
        &self.hosts
    }

    /// Number of hosts.
    pub fn host_count(&self) -> usize {
        self.hosts.len()
    }

    /// Number of sites.
    pub fn site_count(&self) -> usize {
        self.sites.len()
    }

    /// Looks up a site.
    pub fn site(&self, id: SiteId) -> &Site {
        &self.sites[id.0]
    }

    /// Looks up a cluster.
    pub fn cluster(&self, id: ClusterId) -> &Cluster {
        &self.clusters[id.0]
    }

    /// Looks up a host.
    pub fn host(&self, id: HostId) -> &Host {
        &self.hosts[id.0]
    }

    /// Finds a site by name.
    pub fn site_by_name(&self, name: &str) -> Option<&Site> {
        self.sites.iter().find(|s| s.name == name)
    }

    /// Finds a host by name.
    pub fn host_by_name(&self, name: &str) -> Option<&Host> {
        self.hosts.iter().find(|h| h.name == name)
    }

    /// Hosts located at `site`.
    pub fn hosts_at_site(&self, site: SiteId) -> impl Iterator<Item = &Host> {
        self.hosts.iter().filter(move |h| h.site == site)
    }

    /// Hosts belonging to `cluster`.
    pub fn hosts_in_cluster(&self, cluster: ClusterId) -> impl Iterator<Item = &Host> {
        self.hosts.iter().filter(move |h| h.cluster == cluster)
    }

    /// Total number of cores at `site`.
    pub fn cores_at_site(&self, site: SiteId) -> usize {
        self.hosts_at_site(site).map(|h| h.cores).sum()
    }

    /// Total number of cores in the whole topology.
    pub fn total_cores(&self) -> usize {
        self.hosts.iter().map(|h| h.cores).sum()
    }

    /// Base (noise-free) round-trip time between two hosts.
    ///
    /// Same host → loopback RTT; same site → intra-site RTT; otherwise the
    /// site-to-site matrix entry.
    pub fn rtt(&self, a: HostId, b: HostId) -> SimDuration {
        if a == b {
            return self.intra_host_rtt;
        }
        let sa = self.hosts[a.0].site;
        let sb = self.hosts[b.0].site;
        self.rtt[sa.0][sb.0]
    }

    /// Base round-trip time between two sites.
    pub fn site_rtt(&self, a: SiteId, b: SiteId) -> SimDuration {
        self.rtt[a.0][b.0]
    }

    /// One-way latency between two hosts (half the RTT).
    pub fn latency(&self, a: HostId, b: HostId) -> SimDuration {
        self.rtt(a, b) / 2
    }

    /// Bottleneck bandwidth between two hosts, in bits per second: the
    /// minimum of the two NICs and of the site-to-site link.
    pub fn bandwidth_bps(&self, a: HostId, b: HostId) -> f64 {
        if a == b {
            // Shared-memory transfers are modelled as a generous multiple of
            // the NIC rate rather than infinite, so message size still counts.
            return self.nic_bw_bps * 8.0;
        }
        let sa = self.hosts[a.0].site;
        let sb = self.hosts[b.0].site;
        self.bw_bps[sa.0][sb.0].min(self.nic_bw_bps)
    }

    /// Loopback RTT used between co-located processes.
    pub fn intra_host_rtt(&self) -> SimDuration {
        self.intra_host_rtt
    }

    /// Per-host NIC bandwidth in bits per second.
    pub fn nic_bw_bps(&self) -> f64 {
        self.nic_bw_bps
    }
}

/// Default intra-site RTT if the builder does not override it: a LAN-grade
/// 0.087 ms, the Nancy-to-Nancy figure quoted in the paper's Figure 2 legend.
pub const DEFAULT_INTRA_SITE_RTT: SimDuration = SimDuration::from_micros(87);

/// Default loopback RTT between processes sharing a host.
pub const DEFAULT_INTRA_HOST_RTT: SimDuration = SimDuration::from_micros(10);

/// Default WAN bandwidth (10 Gbps, the Grid'5000 backbone).
pub const DEFAULT_WAN_BW_BPS: f64 = 10e9;

/// Default NIC bandwidth (1 Gbps Ethernet, standard on the 2008 clusters).
pub const DEFAULT_NIC_BW_BPS: f64 = 1e9;

/// Incremental builder for [`Topology`].
pub struct TopologyBuilder {
    sites: Vec<Site>,
    clusters: Vec<Cluster>,
    hosts: Vec<Host>,
    rtt_overrides: Vec<(SiteId, SiteId, SimDuration)>,
    bw_overrides: Vec<(SiteId, SiteId, f64)>,
    intra_site_rtt: SimDuration,
    intra_host_rtt: SimDuration,
    default_wan_bw_bps: f64,
    nic_bw_bps: f64,
}

impl Default for TopologyBuilder {
    fn default() -> Self {
        Self::new()
    }
}

/// Per-node hardware description used when adding a cluster.
#[derive(Debug, Clone, Copy)]
pub struct NodeSpec {
    /// Cores per node.
    pub cores: usize,
    /// CPU sockets per node.
    pub cpus: usize,
    /// Per-core compute rate (operations per second).
    pub ops_per_sec: f64,
    /// Memory per node in bytes.
    pub mem_bytes: u64,
}

impl Default for NodeSpec {
    fn default() -> Self {
        NodeSpec {
            cores: 2,
            cpus: 2,
            // ~2 Gop/s per core is representative of the 2006-2008 Opteron /
            // Xeon cores listed in Table 1.
            ops_per_sec: 2.0e9,
            mem_bytes: 2 * 1024 * 1024 * 1024,
        }
    }
}

impl TopologyBuilder {
    /// Creates a builder with Grid'5000-flavoured defaults.
    pub fn new() -> Self {
        TopologyBuilder {
            sites: Vec::new(),
            clusters: Vec::new(),
            hosts: Vec::new(),
            rtt_overrides: Vec::new(),
            bw_overrides: Vec::new(),
            intra_site_rtt: DEFAULT_INTRA_SITE_RTT,
            intra_host_rtt: DEFAULT_INTRA_HOST_RTT,
            default_wan_bw_bps: DEFAULT_WAN_BW_BPS,
            nic_bw_bps: DEFAULT_NIC_BW_BPS,
        }
    }

    /// Registers a site and returns its identifier.
    pub fn add_site(&mut self, name: impl Into<String>) -> SiteId {
        let id = SiteId(self.sites.len());
        self.sites.push(Site {
            id,
            name: name.into(),
        });
        id
    }

    /// Registers a cluster of `nodes` identical hosts at `site` and returns
    /// its identifier.  One [`Host`] is created per node, named
    /// `"<cluster>-<index>"`.
    pub fn add_cluster(
        &mut self,
        site: SiteId,
        name: impl Into<String>,
        cpu_model: impl Into<String>,
        nodes: usize,
        spec: NodeSpec,
    ) -> ClusterId {
        assert!(site.0 < self.sites.len(), "unknown site {site}");
        assert!(nodes > 0, "a cluster needs at least one node");
        assert!(spec.cores > 0, "a node needs at least one core");
        let name = name.into();
        let id = ClusterId(self.clusters.len());
        self.clusters.push(Cluster {
            id,
            name: name.clone(),
            site,
            cpu_model: cpu_model.into(),
            nodes,
            cpus: spec.cpus * nodes,
            cores: spec.cores * nodes,
        });
        for i in 0..nodes {
            let hid = HostId(self.hosts.len());
            self.hosts.push(Host {
                id: hid,
                name: format!("{name}-{i}"),
                site,
                cluster: id,
                cores: spec.cores,
                ops_per_sec: spec.ops_per_sec,
                mem_bytes: spec.mem_bytes,
            });
        }
        id
    }

    /// Sets the symmetric RTT between two distinct sites.
    pub fn set_rtt(&mut self, a: SiteId, b: SiteId, rtt: SimDuration) -> &mut Self {
        assert_ne!(a, b, "use set_intra_site_rtt for the diagonal");
        self.rtt_overrides.push((a, b, rtt));
        self
    }

    /// Sets the RTT used between hosts of the same site.
    pub fn set_intra_site_rtt(&mut self, rtt: SimDuration) -> &mut Self {
        self.intra_site_rtt = rtt;
        self
    }

    /// Sets the RTT used between processes of the same host.
    pub fn set_intra_host_rtt(&mut self, rtt: SimDuration) -> &mut Self {
        self.intra_host_rtt = rtt;
        self
    }

    /// Sets the symmetric bandwidth (bits per second) between two sites.
    pub fn set_bandwidth(&mut self, a: SiteId, b: SiteId, bps: f64) -> &mut Self {
        assert!(bps > 0.0, "bandwidth must be positive");
        self.bw_overrides.push((a, b, bps));
        self
    }

    /// Sets the default WAN bandwidth applied to site pairs without an
    /// explicit override.
    pub fn set_default_wan_bandwidth(&mut self, bps: f64) -> &mut Self {
        assert!(bps > 0.0, "bandwidth must be positive");
        self.default_wan_bw_bps = bps;
        self
    }

    /// Sets the per-host NIC bandwidth.
    pub fn set_nic_bandwidth(&mut self, bps: f64) -> &mut Self {
        assert!(bps > 0.0, "bandwidth must be positive");
        self.nic_bw_bps = bps;
        self
    }

    /// Finalises the topology.
    ///
    /// Site pairs without an explicit RTT default to 20 ms (a conservative
    /// national-WAN figure) so that forgetting an entry cannot silently make
    /// a remote site look local.
    pub fn build(self) -> Topology {
        let n = self.sites.len();
        let default_wan_rtt = SimDuration::from_millis(20);
        let mut rtt = vec![vec![default_wan_rtt; n]; n];
        let mut bw = vec![vec![self.default_wan_bw_bps; n]; n];
        for (i, row) in rtt.iter_mut().enumerate() {
            row[i] = self.intra_site_rtt;
        }
        for (i, row) in bw.iter_mut().enumerate() {
            row[i] = self.nic_bw_bps.max(self.default_wan_bw_bps);
        }
        for (a, b, d) in self.rtt_overrides {
            rtt[a.0][b.0] = d;
            rtt[b.0][a.0] = d;
        }
        for (a, b, bps) in self.bw_overrides {
            bw[a.0][b.0] = bps;
            bw[b.0][a.0] = bps;
        }
        Topology {
            sites: self.sites,
            clusters: self.clusters,
            hosts: self.hosts,
            rtt,
            bw_bps: bw,
            intra_host_rtt: self.intra_host_rtt,
            nic_bw_bps: self.nic_bw_bps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_site_topology() -> Topology {
        let mut b = TopologyBuilder::new();
        let s0 = b.add_site("alpha");
        let s1 = b.add_site("beta");
        b.add_cluster(
            s0,
            "a",
            "TestCPU",
            3,
            NodeSpec {
                cores: 4,
                cpus: 2,
                ops_per_sec: 1e9,
                mem_bytes: 1 << 30,
            },
        );
        b.add_cluster(
            s1,
            "b",
            "TestCPU",
            2,
            NodeSpec {
                cores: 2,
                cpus: 1,
                ops_per_sec: 1e9,
                mem_bytes: 1 << 30,
            },
        );
        b.set_rtt(s0, s1, SimDuration::from_millis(12));
        b.set_bandwidth(s0, s1, 1e9);
        b.build()
    }

    #[test]
    fn builder_creates_hosts_per_node() {
        let t = two_site_topology();
        assert_eq!(t.site_count(), 2);
        assert_eq!(t.clusters().len(), 2);
        assert_eq!(t.host_count(), 5);
        assert_eq!(t.hosts_at_site(SiteId(0)).count(), 3);
        assert_eq!(t.hosts_at_site(SiteId(1)).count(), 2);
        assert_eq!(t.cores_at_site(SiteId(0)), 12);
        assert_eq!(t.cores_at_site(SiteId(1)), 4);
        assert_eq!(t.total_cores(), 16);
        assert_eq!(t.host_by_name("a-2").unwrap().cluster, ClusterId(0));
        assert_eq!(t.cluster(ClusterId(0)).cores_per_node(), 4);
        assert_eq!(t.cluster(ClusterId(0)).cpus, 6);
    }

    #[test]
    fn rtt_resolution_by_locality() {
        let t = two_site_topology();
        let a0 = t.host_by_name("a-0").unwrap().id;
        let a1 = t.host_by_name("a-1").unwrap().id;
        let b0 = t.host_by_name("b-0").unwrap().id;
        assert_eq!(t.rtt(a0, a0), DEFAULT_INTRA_HOST_RTT);
        assert_eq!(t.rtt(a0, a1), DEFAULT_INTRA_SITE_RTT);
        assert_eq!(t.rtt(a0, b0), SimDuration::from_millis(12));
        assert_eq!(t.rtt(b0, a0), SimDuration::from_millis(12));
        assert_eq!(t.latency(a0, b0), SimDuration::from_millis(6));
    }

    #[test]
    fn bandwidth_is_bottlenecked_by_nic() {
        let t = two_site_topology();
        let a0 = t.host_by_name("a-0").unwrap().id;
        let a1 = t.host_by_name("a-1").unwrap().id;
        let b0 = t.host_by_name("b-0").unwrap().id;
        // WAN link is 1 Gbps, NIC is 1 Gbps -> 1 Gbps.
        assert_eq!(t.bandwidth_bps(a0, b0), 1e9);
        // Intra-site is limited by the NIC.
        assert_eq!(t.bandwidth_bps(a0, a1), DEFAULT_NIC_BW_BPS);
        // Same host is faster than any NIC.
        assert!(t.bandwidth_bps(a0, a0) > DEFAULT_NIC_BW_BPS);
    }

    #[test]
    fn missing_rtt_defaults_to_conservative_wan() {
        let mut b = TopologyBuilder::new();
        let s0 = b.add_site("x");
        let s1 = b.add_site("y");
        b.add_cluster(s0, "cx", "c", 1, NodeSpec::default());
        b.add_cluster(s1, "cy", "c", 1, NodeSpec::default());
        let t = b.build();
        assert_eq!(t.site_rtt(s0, s1), SimDuration::from_millis(20));
    }

    #[test]
    fn lookups_by_name() {
        let t = two_site_topology();
        assert!(t.site_by_name("alpha").is_some());
        assert!(t.site_by_name("gamma").is_none());
        assert!(t.host_by_name("b-1").is_some());
        assert!(t.host_by_name("b-7").is_none());
    }

    #[test]
    #[should_panic(expected = "unknown site")]
    fn adding_cluster_to_unknown_site_panics() {
        let mut b = TopologyBuilder::new();
        b.add_cluster(SiteId(3), "c", "c", 1, NodeSpec::default());
    }

    #[test]
    #[should_panic(expected = "diagonal")]
    fn rtt_diagonal_override_panics() {
        let mut b = TopologyBuilder::new();
        let s = b.add_site("x");
        b.set_rtt(s, s, SimDuration::from_millis(1));
    }

    #[test]
    fn display_of_ids() {
        assert_eq!(format!("{}", SiteId(1)), "site#1");
        assert_eq!(format!("{}", ClusterId(2)), "cluster#2");
        assert_eq!(format!("{}", HostId(3)), "host#3");
    }
}
