//! Measurement noise model for latency probes.
//!
//! Section 5.1 of the paper observes that the latency measured by the MPD
//! "is subject to CPU and TCP load variations", and attributes the
//! interleaving of Lyon/Rennes/Bordeaux hosts in the concentrate experiment
//! to this: their RTTs to Nancy differ by less than 1.1 ms, well within the
//! measurement noise.  This module models that noise as a multiplicative
//! perturbation on the base RTT.

use crate::time::SimDuration;
use rand::Rng;

/// Multiplicative Gaussian noise applied to probe measurements.
#[derive(Debug, Clone, Copy)]
pub struct NoiseModel {
    /// Relative standard deviation of the perturbation (e.g. `0.06` = 6 %).
    pub sigma: f64,
    /// Perturbations are clamped to `±clamp_sigmas × sigma` to keep extreme
    /// draws from re-ordering sites whose RTTs differ by tens of
    /// milliseconds.
    pub clamp_sigmas: f64,
    /// Constant additive jitter floor (queueing on a loaded peer), applied on
    /// top of the multiplicative term.
    pub additive_jitter: SimDuration,
}

impl Default for NoiseModel {
    fn default() -> Self {
        NoiseModel {
            sigma: 0.06,
            clamp_sigmas: 3.0,
            additive_jitter: SimDuration::from_micros(200),
        }
    }
}

impl NoiseModel {
    /// A model that returns measurements unchanged.
    pub fn disabled() -> Self {
        NoiseModel {
            sigma: 0.0,
            clamp_sigmas: 0.0,
            additive_jitter: SimDuration::ZERO,
        }
    }

    /// A model with the given relative standard deviation and no additive
    /// jitter.
    pub fn with_sigma(sigma: f64) -> Self {
        assert!(sigma >= 0.0 && sigma.is_finite(), "sigma must be >= 0");
        NoiseModel {
            sigma,
            ..NoiseModel::default()
        }
    }

    /// True if this model never perturbs measurements.
    pub fn is_disabled(&self) -> bool {
        self.sigma == 0.0 && self.additive_jitter.is_zero()
    }

    /// Applies one random perturbation to a base measurement.
    pub fn perturb<R: Rng + ?Sized>(&self, base: SimDuration, rng: &mut R) -> SimDuration {
        if self.is_disabled() {
            return base;
        }
        let mut factor = 1.0 + self.sigma * standard_normal(rng);
        if self.clamp_sigmas > 0.0 {
            let lo = 1.0 - self.clamp_sigmas * self.sigma;
            let hi = 1.0 + self.clamp_sigmas * self.sigma;
            factor = factor.clamp(lo, hi);
        }
        // Never let noise make a measurement non-positive.
        factor = factor.max(0.05);
        let jitter = if self.additive_jitter.is_zero() {
            SimDuration::ZERO
        } else {
            self.additive_jitter.mul_f64(rng.gen::<f64>())
        };
        base.mul_f64(factor) + jitter
    }
}

/// Draws from the standard normal distribution using the Box–Muller
/// transform (keeps us within the plain `rand` dependency).
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid ln(0) by sampling in (0, 1].
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn disabled_model_is_identity() {
        let m = NoiseModel::disabled();
        let mut rng = StdRng::seed_from_u64(1);
        let base = SimDuration::from_millis(10);
        assert!(m.is_disabled());
        assert_eq!(m.perturb(base, &mut rng), base);
    }

    #[test]
    fn perturbation_stays_within_clamp() {
        let m = NoiseModel::with_sigma(0.06);
        let mut rng = StdRng::seed_from_u64(42);
        let base = SimDuration::from_millis(10);
        for _ in 0..10_000 {
            let p = m.perturb(base, &mut rng);
            // 3 sigma = 18 % plus at most 200 us of additive jitter.
            assert!(p >= base.mul_f64(0.82), "{p} below clamp");
            assert!(
                p <= base.mul_f64(1.18) + SimDuration::from_micros(200),
                "{p} above clamp"
            );
        }
    }

    #[test]
    fn noise_is_roughly_centred() {
        let m = NoiseModel {
            additive_jitter: SimDuration::ZERO,
            ..NoiseModel::with_sigma(0.05)
        };
        let mut rng = StdRng::seed_from_u64(7);
        let base = SimDuration::from_millis(12);
        let n = 20_000;
        let mean: f64 = (0..n)
            .map(|_| m.perturb(base, &mut rng).as_millis_f64())
            .sum::<f64>()
            / n as f64;
        assert!((mean - 12.0).abs() < 0.05, "mean {mean} drifted");
    }

    #[test]
    fn noise_can_interleave_close_sites_but_not_distant_ones() {
        // Lyon (10.5 ms) and Rennes (11.6 ms) should sometimes swap; Nancy
        // (0.087 ms) must never look farther than Lyon.
        let m = NoiseModel::default();
        let mut rng = StdRng::seed_from_u64(2024);
        let nancy = SimDuration::from_micros(87);
        let lyon = SimDuration::from_micros(10_500);
        let rennes = SimDuration::from_micros(11_600);
        let mut swaps = 0;
        for _ in 0..5_000 {
            let l = m.perturb(lyon, &mut rng);
            let r = m.perturb(rennes, &mut rng);
            let n = m.perturb(nancy, &mut rng);
            if r < l {
                swaps += 1;
            }
            assert!(n < l && n < r, "noise re-ordered a local vs remote site");
        }
        assert!(
            swaps > 100,
            "expected close sites to interleave, got {swaps}"
        );
        assert!(swaps < 2_500, "noise should not invert the mean ordering");
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }

    #[test]
    #[should_panic(expected = "sigma")]
    fn negative_sigma_panics() {
        NoiseModel::with_sigma(-0.1);
    }
}
