//! Point-to-point message transfer cost model.
//!
//! A transfer of `b` bytes from host `s` to host `d` costs
//!
//! ```text
//! T(s, d, b) = latency(s, d) + overhead + b * 8 / bandwidth(s, d)
//! ```
//!
//! i.e. a classic latency/bandwidth (Hockney) model with a fixed per-message
//! software overhead representing the Java serialization and TCP stack the
//! original P2P-MPI runtime goes through.  Collective operations are built on
//! top of this in the `p2pmpi-mpi` crate, so their cost emerges from the
//! placement of processes and this model — exactly the effect Figure 4 of the
//! paper studies.

use crate::time::SimDuration;
use crate::topology::{HostId, SiteId, Topology};
use std::sync::Arc;

/// Tunable parameters of the transfer model.
#[derive(Debug, Clone, Copy)]
pub struct NetworkParams {
    /// Fixed per-message software overhead (serialization, syscalls).
    pub per_message_overhead: SimDuration,
    /// Multiplier applied to the payload size to account for protocol framing.
    pub framing_factor: f64,
    /// Size in bytes of the empty "ping" message used by MPD latency probes.
    pub probe_bytes: u64,
}

impl Default for NetworkParams {
    fn default() -> Self {
        NetworkParams {
            // ~35 us of per-message software overhead is representative of a
            // 2008-era Java TCP stack.
            per_message_overhead: SimDuration::from_micros(35),
            framing_factor: 1.05,
            probe_bytes: 64,
        }
    }
}

/// Transfer-time oracle bound to a topology.
///
/// The topology's RTT matrix is immutable (shared behind an `Arc`); transient
/// network degradation — the slow-link fault scenarios — is modeled here
/// instead, as per-site latency multipliers applied on top of the matrix
/// ([`NetworkModel::set_site_latency_factor`]).
#[derive(Debug, Clone)]
pub struct NetworkModel {
    topology: Arc<Topology>,
    params: NetworkParams,
    /// Per-site latency multipliers (empty while no link is degraded; the
    /// common case pays one `is_empty` check).  A transfer is slowed by the
    /// worse of its two endpoints' factors.
    site_latency_factor: Vec<f64>,
}

impl NetworkModel {
    /// Creates a model over `topology` with default parameters.
    pub fn new(topology: Arc<Topology>) -> Self {
        NetworkModel {
            topology,
            params: NetworkParams::default(),
            site_latency_factor: Vec::new(),
        }
    }

    /// Creates a model with explicit parameters.
    pub fn with_params(topology: Arc<Topology>, params: NetworkParams) -> Self {
        assert!(
            params.framing_factor >= 1.0,
            "framing factor cannot shrink messages"
        );
        NetworkModel {
            topology,
            params,
            site_latency_factor: Vec::new(),
        }
    }

    /// Sets the latency multiplier of every transfer touching `site`
    /// (slow-link fault injection).  `1.0` restores the nominal latency; the
    /// bandwidth and overhead terms are unaffected.
    pub fn set_site_latency_factor(&mut self, site: SiteId, factor: f64) {
        assert!(
            factor >= 1.0 && factor.is_finite(),
            "a latency factor below 1 would speed links up"
        );
        if self.site_latency_factor.is_empty() {
            if factor == 1.0 {
                return;
            }
            self.site_latency_factor = vec![1.0; self.topology.site_count()];
        }
        self.site_latency_factor[site.0] = factor;
        if self.site_latency_factor.iter().all(|&f| f == 1.0) {
            self.site_latency_factor.clear();
        }
    }

    /// The current latency multiplier of `site` (1.0 when undegraded).
    pub fn site_latency_factor(&self, site: SiteId) -> f64 {
        self.site_latency_factor.get(site.0).copied().unwrap_or(1.0)
    }

    /// The latency multiplier of a `src → dst` transfer: the worse of the
    /// two endpoint sites' factors.
    fn latency_factor(&self, src: HostId, dst: HostId) -> f64 {
        if self.site_latency_factor.is_empty() {
            return 1.0;
        }
        let a = self.site_latency_factor[self.topology.host(src).site.0];
        let b = self.site_latency_factor[self.topology.host(dst).site.0];
        a.max(b)
    }

    /// The topology this model is bound to.
    pub fn topology(&self) -> &Arc<Topology> {
        &self.topology
    }

    /// The model parameters.
    pub fn params(&self) -> NetworkParams {
        self.params
    }

    /// One-way transfer time of `bytes` from `src` to `dst`.
    pub fn transfer_time(&self, src: HostId, dst: HostId, bytes: u64) -> SimDuration {
        let mut latency = self.topology.latency(src, dst);
        let factor = self.latency_factor(src, dst);
        if factor != 1.0 {
            latency = latency.mul_f64(factor);
        }
        let bw = self.topology.bandwidth_bps(src, dst);
        let wire_bytes = bytes as f64 * self.params.framing_factor;
        let serialization = SimDuration::from_secs_f64(wire_bytes * 8.0 / bw);
        latency + self.params.per_message_overhead + serialization
    }

    /// Round-trip time of an application-level probe (the MPD "ping"): two
    /// empty-message transfers, as the paper's Section 4.1 describes.
    pub fn probe_rtt(&self, src: HostId, dst: HostId) -> SimDuration {
        self.transfer_time(src, dst, self.params.probe_bytes)
            + self.transfer_time(dst, src, self.params.probe_bytes)
    }

    /// Base RTT between hosts without any per-message overhead, i.e. the
    /// quantity an ICMP `ping` would report.  Exposed so experiments can
    /// compare the application-level ranking against the ICMP ranking, as
    /// Section 5.1 of the paper discusses.
    pub fn icmp_rtt(&self, src: HostId, dst: HostId) -> SimDuration {
        self.topology.rtt(src, dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{NodeSpec, TopologyBuilder};

    fn topology() -> Arc<Topology> {
        let mut b = TopologyBuilder::new();
        let s0 = b.add_site("local");
        let s1 = b.add_site("remote");
        b.add_cluster(s0, "l", "cpu", 2, NodeSpec::default());
        b.add_cluster(s1, "r", "cpu", 2, NodeSpec::default());
        b.set_rtt(s0, s1, SimDuration::from_millis(10));
        b.set_bandwidth(s0, s1, 1e9);
        Arc::new(b.build())
    }

    #[test]
    fn transfer_time_has_latency_and_bandwidth_terms() {
        let t = topology();
        let m = NetworkModel::new(t.clone());
        let l0 = t.host_by_name("l-0").unwrap().id;
        let r0 = t.host_by_name("r-0").unwrap().id;
        let small = m.transfer_time(l0, r0, 1);
        let large = m.transfer_time(l0, r0, 10_000_000);
        // Latency floor: one-way 5 ms plus overhead.
        assert!(small >= SimDuration::from_millis(5));
        assert!(small < SimDuration::from_millis(6));
        // 10 MB over 1 Gbps is ~84 ms of serialization on top.
        assert!(large > small + SimDuration::from_millis(80));
        assert!(large < small + SimDuration::from_millis(95));
    }

    #[test]
    fn local_transfers_are_much_cheaper() {
        let t = topology();
        let m = NetworkModel::new(t.clone());
        let l0 = t.host_by_name("l-0").unwrap().id;
        let l1 = t.host_by_name("l-1").unwrap().id;
        let r0 = t.host_by_name("r-0").unwrap().id;
        let same_site = m.transfer_time(l0, l1, 1024);
        let cross_site = m.transfer_time(l0, r0, 1024);
        assert!(cross_site > same_site * 10);
        let same_host = m.transfer_time(l0, l0, 1024);
        assert!(same_host < same_site);
    }

    #[test]
    fn probe_rtt_is_round_trip() {
        let t = topology();
        let m = NetworkModel::new(t.clone());
        let l0 = t.host_by_name("l-0").unwrap().id;
        let r0 = t.host_by_name("r-0").unwrap().id;
        let one_way = m.transfer_time(l0, r0, m.params().probe_bytes);
        assert_eq!(m.probe_rtt(l0, r0), one_way * 2);
        // The application-level probe is strictly slower than ICMP, but the
        // ordering against other sites is what matters to P2P-MPI.
        assert!(m.probe_rtt(l0, r0) > m.icmp_rtt(l0, r0));
    }

    #[test]
    fn probe_preserves_icmp_ranking_without_noise() {
        let mut b = TopologyBuilder::new();
        let s0 = b.add_site("origin");
        let near = b.add_site("near");
        let far = b.add_site("far");
        b.add_cluster(s0, "o", "cpu", 1, NodeSpec::default());
        b.add_cluster(near, "n", "cpu", 1, NodeSpec::default());
        b.add_cluster(far, "f", "cpu", 1, NodeSpec::default());
        b.set_rtt(s0, near, SimDuration::from_millis(10));
        b.set_rtt(s0, far, SimDuration::from_millis(17));
        let t = Arc::new(b.build());
        let m = NetworkModel::new(t.clone());
        let o = t.host_by_name("o-0").unwrap().id;
        let n = t.host_by_name("n-0").unwrap().id;
        let f = t.host_by_name("f-0").unwrap().id;
        assert!(m.probe_rtt(o, n) < m.probe_rtt(o, f));
        assert!(m.icmp_rtt(o, n) < m.icmp_rtt(o, f));
    }

    #[test]
    fn site_latency_factor_slows_touching_transfers_only() {
        let t = topology();
        let mut m = NetworkModel::new(t.clone());
        let l0 = t.host_by_name("l-0").unwrap().id;
        let l1 = t.host_by_name("l-1").unwrap().id;
        let r0 = t.host_by_name("r-0").unwrap().id;
        let nominal_cross = m.transfer_time(l0, r0, 1024);
        let nominal_local = m.transfer_time(l0, l1, 1024);
        let remote = t.site_by_name("remote").unwrap().id;
        m.set_site_latency_factor(remote, 10.0);
        assert_eq!(m.site_latency_factor(remote), 10.0);
        // Cross-site latency term is multiplied; overhead/bandwidth are not.
        let degraded = m.transfer_time(l0, r0, 1024);
        assert!(degraded > nominal_cross * 9);
        assert!(degraded < nominal_cross * 10);
        // Local-site transfers are untouched (factor defaults to 1.0 there).
        assert_eq!(m.transfer_time(l0, l1, 1024), nominal_local);
        // The direction does not matter: either endpoint being degraded slows
        // the transfer.
        assert_eq!(m.transfer_time(r0, l0, 1024), degraded);
        // Restoring 1.0 everywhere returns to the exact nominal costs.
        m.set_site_latency_factor(remote, 1.0);
        assert_eq!(m.transfer_time(l0, r0, 1024), nominal_cross);
    }

    #[test]
    #[should_panic(expected = "latency factor")]
    fn sub_unit_latency_factor_panics() {
        let t = topology();
        let mut m = NetworkModel::new(t.clone());
        let s = t.site_by_name("remote").unwrap().id;
        m.set_site_latency_factor(s, 0.5);
    }

    #[test]
    #[should_panic(expected = "framing factor")]
    fn invalid_framing_factor_panics() {
        let t = topology();
        NetworkModel::with_params(
            t,
            NetworkParams {
                framing_factor: 0.5,
                ..NetworkParams::default()
            },
        );
    }
}
