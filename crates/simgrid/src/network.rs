//! Point-to-point message transfer cost model.
//!
//! A transfer of `b` bytes from host `s` to host `d` costs
//!
//! ```text
//! T(s, d, b) = latency(s, d) + overhead + b * 8 / bandwidth(s, d)
//! ```
//!
//! i.e. a classic latency/bandwidth (Hockney) model with a fixed per-message
//! software overhead representing the Java serialization and TCP stack the
//! original P2P-MPI runtime goes through.  Collective operations are built on
//! top of this in the `p2pmpi-mpi` crate, so their cost emerges from the
//! placement of processes and this model — exactly the effect Figure 4 of the
//! paper studies.

use crate::time::SimDuration;
use crate::topology::{HostId, Topology};
use std::sync::Arc;

/// Tunable parameters of the transfer model.
#[derive(Debug, Clone, Copy)]
pub struct NetworkParams {
    /// Fixed per-message software overhead (serialization, syscalls).
    pub per_message_overhead: SimDuration,
    /// Multiplier applied to the payload size to account for protocol framing.
    pub framing_factor: f64,
    /// Size in bytes of the empty "ping" message used by MPD latency probes.
    pub probe_bytes: u64,
}

impl Default for NetworkParams {
    fn default() -> Self {
        NetworkParams {
            // ~35 us of per-message software overhead is representative of a
            // 2008-era Java TCP stack.
            per_message_overhead: SimDuration::from_micros(35),
            framing_factor: 1.05,
            probe_bytes: 64,
        }
    }
}

/// Transfer-time oracle bound to a topology.
#[derive(Debug, Clone)]
pub struct NetworkModel {
    topology: Arc<Topology>,
    params: NetworkParams,
}

impl NetworkModel {
    /// Creates a model over `topology` with default parameters.
    pub fn new(topology: Arc<Topology>) -> Self {
        NetworkModel {
            topology,
            params: NetworkParams::default(),
        }
    }

    /// Creates a model with explicit parameters.
    pub fn with_params(topology: Arc<Topology>, params: NetworkParams) -> Self {
        assert!(
            params.framing_factor >= 1.0,
            "framing factor cannot shrink messages"
        );
        NetworkModel { topology, params }
    }

    /// The topology this model is bound to.
    pub fn topology(&self) -> &Arc<Topology> {
        &self.topology
    }

    /// The model parameters.
    pub fn params(&self) -> NetworkParams {
        self.params
    }

    /// One-way transfer time of `bytes` from `src` to `dst`.
    pub fn transfer_time(&self, src: HostId, dst: HostId, bytes: u64) -> SimDuration {
        let latency = self.topology.latency(src, dst);
        let bw = self.topology.bandwidth_bps(src, dst);
        let wire_bytes = bytes as f64 * self.params.framing_factor;
        let serialization = SimDuration::from_secs_f64(wire_bytes * 8.0 / bw);
        latency + self.params.per_message_overhead + serialization
    }

    /// Round-trip time of an application-level probe (the MPD "ping"): two
    /// empty-message transfers, as the paper's Section 4.1 describes.
    pub fn probe_rtt(&self, src: HostId, dst: HostId) -> SimDuration {
        self.transfer_time(src, dst, self.params.probe_bytes)
            + self.transfer_time(dst, src, self.params.probe_bytes)
    }

    /// Base RTT between hosts without any per-message overhead, i.e. the
    /// quantity an ICMP `ping` would report.  Exposed so experiments can
    /// compare the application-level ranking against the ICMP ranking, as
    /// Section 5.1 of the paper discusses.
    pub fn icmp_rtt(&self, src: HostId, dst: HostId) -> SimDuration {
        self.topology.rtt(src, dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{NodeSpec, TopologyBuilder};

    fn topology() -> Arc<Topology> {
        let mut b = TopologyBuilder::new();
        let s0 = b.add_site("local");
        let s1 = b.add_site("remote");
        b.add_cluster(s0, "l", "cpu", 2, NodeSpec::default());
        b.add_cluster(s1, "r", "cpu", 2, NodeSpec::default());
        b.set_rtt(s0, s1, SimDuration::from_millis(10));
        b.set_bandwidth(s0, s1, 1e9);
        Arc::new(b.build())
    }

    #[test]
    fn transfer_time_has_latency_and_bandwidth_terms() {
        let t = topology();
        let m = NetworkModel::new(t.clone());
        let l0 = t.host_by_name("l-0").unwrap().id;
        let r0 = t.host_by_name("r-0").unwrap().id;
        let small = m.transfer_time(l0, r0, 1);
        let large = m.transfer_time(l0, r0, 10_000_000);
        // Latency floor: one-way 5 ms plus overhead.
        assert!(small >= SimDuration::from_millis(5));
        assert!(small < SimDuration::from_millis(6));
        // 10 MB over 1 Gbps is ~84 ms of serialization on top.
        assert!(large > small + SimDuration::from_millis(80));
        assert!(large < small + SimDuration::from_millis(95));
    }

    #[test]
    fn local_transfers_are_much_cheaper() {
        let t = topology();
        let m = NetworkModel::new(t.clone());
        let l0 = t.host_by_name("l-0").unwrap().id;
        let l1 = t.host_by_name("l-1").unwrap().id;
        let r0 = t.host_by_name("r-0").unwrap().id;
        let same_site = m.transfer_time(l0, l1, 1024);
        let cross_site = m.transfer_time(l0, r0, 1024);
        assert!(cross_site > same_site * 10);
        let same_host = m.transfer_time(l0, l0, 1024);
        assert!(same_host < same_site);
    }

    #[test]
    fn probe_rtt_is_round_trip() {
        let t = topology();
        let m = NetworkModel::new(t.clone());
        let l0 = t.host_by_name("l-0").unwrap().id;
        let r0 = t.host_by_name("r-0").unwrap().id;
        let one_way = m.transfer_time(l0, r0, m.params().probe_bytes);
        assert_eq!(m.probe_rtt(l0, r0), one_way * 2);
        // The application-level probe is strictly slower than ICMP, but the
        // ordering against other sites is what matters to P2P-MPI.
        assert!(m.probe_rtt(l0, r0) > m.icmp_rtt(l0, r0));
    }

    #[test]
    fn probe_preserves_icmp_ranking_without_noise() {
        let mut b = TopologyBuilder::new();
        let s0 = b.add_site("origin");
        let near = b.add_site("near");
        let far = b.add_site("far");
        b.add_cluster(s0, "o", "cpu", 1, NodeSpec::default());
        b.add_cluster(near, "n", "cpu", 1, NodeSpec::default());
        b.add_cluster(far, "f", "cpu", 1, NodeSpec::default());
        b.set_rtt(s0, near, SimDuration::from_millis(10));
        b.set_rtt(s0, far, SimDuration::from_millis(17));
        let t = Arc::new(b.build());
        let m = NetworkModel::new(t.clone());
        let o = t.host_by_name("o-0").unwrap().id;
        let n = t.host_by_name("n-0").unwrap().id;
        let f = t.host_by_name("f-0").unwrap().id;
        assert!(m.probe_rtt(o, n) < m.probe_rtt(o, f));
        assert!(m.icmp_rtt(o, n) < m.icmp_rtt(o, f));
    }

    #[test]
    #[should_panic(expected = "framing factor")]
    fn invalid_framing_factor_panics() {
        let t = topology();
        NetworkModel::with_params(
            t,
            NetworkParams {
                framing_factor: 0.5,
                ..NetworkParams::default()
            },
        );
    }
}
