//! Memory contention model.
//!
//! The paper's Section 5.2 explains the EP result ("spread is slightly faster
//! … probably due to the intensive memory accesses that may represent a
//! bottleneck with concentrate") and the IS result ("no overhead due to
//! concurrent memory accesses" when spread keeps one process per host) with
//! the same mechanism: processes co-located on a host share its memory
//! bandwidth.  We model this as a multiplicative slowdown of compute sections
//! that grows with the number of co-resident processes and with the kernel's
//! memory intensity.

/// How memory-bound a computation is, in `[0, 1]`.
///
/// `0.0` means pure register/ALU work (no slowdown from sharing a host);
/// `1.0` means fully memory-bandwidth-bound (slowdown proportional to the
/// number of co-resident processes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryIntensity(f64);

impl MemoryIntensity {
    /// Builds a memory intensity, panicking outside `[0, 1]`.
    pub fn new(v: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&v),
            "memory intensity must be in [0,1]"
        );
        MemoryIntensity(v)
    }

    /// Raw value.
    pub fn value(self) -> f64 {
        self.0
    }

    /// A CPU-bound kernel (e.g. the core of NAS EP).
    pub const CPU_BOUND: MemoryIntensity = MemoryIntensity(0.12);
    /// A memory-bound kernel (e.g. the bucket counting of NAS IS).
    pub const MEMORY_BOUND: MemoryIntensity = MemoryIntensity(0.65);
    /// No memory pressure at all.
    pub const NONE: MemoryIntensity = MemoryIntensity(0.0);
}

/// Contention model parameters.
#[derive(Debug, Clone, Copy)]
pub struct MemoryContentionModel {
    /// Slowdown added per extra co-resident process for a fully memory-bound
    /// kernel.  The default of 0.28 makes 4 fully memory-bound processes on a
    /// dual-core-era node run ~1.8x slower each, consistent with the modest
    /// EP gap the paper reports.
    pub alpha: f64,
    /// Cap on the total slowdown factor (saturation of the memory bus).
    pub max_slowdown: f64,
}

impl Default for MemoryContentionModel {
    fn default() -> Self {
        MemoryContentionModel {
            alpha: 0.28,
            max_slowdown: 4.0,
        }
    }
}

impl MemoryContentionModel {
    /// A model with a specific per-process contention coefficient.
    pub fn with_alpha(alpha: f64) -> Self {
        assert!(alpha >= 0.0 && alpha.is_finite(), "alpha must be >= 0");
        MemoryContentionModel {
            alpha,
            ..MemoryContentionModel::default()
        }
    }

    /// A model in which co-location never slows anything down.
    pub fn disabled() -> Self {
        MemoryContentionModel {
            alpha: 0.0,
            max_slowdown: 1.0,
        }
    }

    /// Slowdown factor (≥ 1) for one process when `residents` processes run
    /// on the same host and the kernel has the given memory intensity.
    pub fn slowdown(&self, residents: usize, intensity: MemoryIntensity) -> f64 {
        if residents <= 1 {
            return 1.0;
        }
        let extra = (residents - 1) as f64;
        let s = 1.0 + self.alpha * extra * intensity.value();
        s.min(self.max_slowdown)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_resident_has_no_slowdown() {
        let m = MemoryContentionModel::default();
        assert_eq!(m.slowdown(1, MemoryIntensity::MEMORY_BOUND), 1.0);
        assert_eq!(m.slowdown(0, MemoryIntensity::MEMORY_BOUND), 1.0);
    }

    #[test]
    fn slowdown_grows_with_residents_and_intensity() {
        let m = MemoryContentionModel::default();
        let cpu2 = m.slowdown(2, MemoryIntensity::CPU_BOUND);
        let cpu4 = m.slowdown(4, MemoryIntensity::CPU_BOUND);
        let mem2 = m.slowdown(2, MemoryIntensity::MEMORY_BOUND);
        let mem4 = m.slowdown(4, MemoryIntensity::MEMORY_BOUND);
        assert!(cpu2 > 1.0 && cpu4 > cpu2);
        assert!(mem2 > cpu2 && mem4 > mem2);
    }

    #[test]
    fn slowdown_saturates() {
        let m = MemoryContentionModel::default();
        let s = m.slowdown(1000, MemoryIntensity::MEMORY_BOUND);
        assert_eq!(s, m.max_slowdown);
    }

    #[test]
    fn disabled_model_is_identity() {
        let m = MemoryContentionModel::disabled();
        assert_eq!(m.slowdown(16, MemoryIntensity::MEMORY_BOUND), 1.0);
    }

    #[test]
    fn zero_intensity_never_slows_down() {
        let m = MemoryContentionModel::default();
        assert_eq!(m.slowdown(8, MemoryIntensity::NONE), 1.0);
    }

    #[test]
    #[should_panic(expected = "in [0,1]")]
    fn invalid_intensity_panics() {
        MemoryIntensity::new(1.5);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn invalid_alpha_panics() {
        MemoryContentionModel::with_alpha(-1.0);
    }
}
