//! Closure-based discrete-event engine.
//!
//! The engine owns a virtual clock and a queue of closures.  Each closure
//! receives `&mut Engine` when it fires, so it can schedule follow-up events,
//! inspect the clock, or stop the run.  This is the substrate on which the
//! overlay's periodic behaviours (alive signals, cache refreshes, latency
//! probes, reservation timeouts) are simulated.
//!
//! Closure payloads live in the slab-backed [`crate::event::EventStore`]
//! behind the queue, and the priority structure is selectable via
//! [`QueueKind`] ([`Engine::with_queue_kind`]): the default binary heap, a
//! calendar queue for large uniform event populations, or a ladder queue
//! for large *skewed* ones (see `crate::event` for the selection guide).
//! The scheduling API
//! ([`Engine::schedule_at`] / [`Engine::schedule_in`]) is identical for
//! every configuration.  Both scheduling calls return the event's
//! [`EventKey`], which [`Engine::cancel`] accepts to revoke a pending event
//! (cancel-after-fire is a harmless no-op; see `crate::event` for the
//! tombstone mechanics and the FIFO guarantees around them).
//!
//! [`TypedEngine`] is the same clock-plus-queue machinery for simulations
//! whose events are plain data instead of boxed closures: the owner pops
//! due events with [`TypedEngine::pop_due`] and dispatches them itself,
//! which sidesteps the borrow knot of closures that need `&mut` access to
//! state the engine lives inside (the overlay crate's simulation runs on
//! this).

use crate::event::{EventKey, EventQueue, QueueKind, Scheduled};
use crate::time::{SimDuration, SimTime};

/// A schedulable action.
pub type Action = Box<dyn FnOnce(&mut Engine)>;

/// Discrete-event engine with a closure event model.
pub struct Engine {
    now: SimTime,
    queue: EventQueue<Action>,
    processed: u64,
    stopped: bool,
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

impl Engine {
    /// Creates an engine with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Self::with_queue_kind(QueueKind::BinaryHeap)
    }

    /// Creates an engine using the given priority structure for its event
    /// queue (see [`QueueKind`]); the scheduling API is unaffected.
    pub fn with_queue_kind(kind: QueueKind) -> Self {
        Engine {
            now: SimTime::ZERO,
            queue: EventQueue::with_kind(kind),
            processed: 0,
            stopped: false,
        }
    }

    /// Creates an engine whose queue is pre-sized for `capacity` pending
    /// events.  Simulations that know their event volume up front (e.g. a
    /// job sweep scheduling thousands of arrivals) avoid every intermediate
    /// growth of the event store.
    pub fn with_capacity(capacity: usize) -> Self {
        Self::with_capacity_and_kind(capacity, QueueKind::BinaryHeap)
    }

    /// Creates a pre-sized engine over the given priority structure.
    pub fn with_capacity_and_kind(capacity: usize, kind: QueueKind) -> Self {
        Engine {
            now: SimTime::ZERO,
            queue: EventQueue::with_capacity_and_kind(capacity, kind),
            processed: 0,
            stopped: false,
        }
    }

    /// The priority structure the event queue uses.
    pub fn queue_kind(&self) -> QueueKind {
        self.queue.kind()
    }

    /// Reserves queue capacity for at least `additional` more events.
    pub fn reserve_events(&mut self, additional: usize) {
        self.queue.reserve(additional);
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Requests the run loop to stop after the current event.
    pub fn stop(&mut self) {
        self.stopped = true;
    }

    /// True if [`Engine::stop`] has been called.
    pub fn is_stopped(&self) -> bool {
        self.stopped
    }

    /// Schedules `action` at absolute time `at`, returning its key for
    /// [`Engine::cancel`].  Scheduling in the past is a logic error and
    /// panics to surface protocol bugs early.
    pub fn schedule_at<F>(&mut self, at: SimTime, action: F) -> EventKey
    where
        F: FnOnce(&mut Engine) + 'static,
    {
        assert!(
            at >= self.now,
            "cannot schedule an event in the past ({} < {})",
            at,
            self.now
        );
        self.queue.push(at, Box::new(action))
    }

    /// Schedules `action` after the given delay, returning its key for
    /// [`Engine::cancel`].
    pub fn schedule_in<F>(&mut self, delay: SimDuration, action: F) -> EventKey
    where
        F: FnOnce(&mut Engine) + 'static,
    {
        let at = self.now + delay;
        self.queue.push(at, Box::new(action))
    }

    /// Revokes a pending event.  Returns `true` if the event was still
    /// pending; `false` if it already fired, was already cancelled, or the
    /// key is otherwise stale (so timeout-vs-reply races need no guard).
    pub fn cancel(&mut self, key: EventKey) -> bool {
        self.queue.cancel(key).is_some()
    }

    /// True if `key` still refers to a pending event.
    pub fn is_pending(&self, key: EventKey) -> bool {
        self.queue.is_pending(key)
    }

    /// Executes the next pending event, advancing the clock.  Returns `false`
    /// if the queue was empty or the engine was stopped.
    pub fn step(&mut self) -> bool {
        if self.stopped {
            return false;
        }
        match self.queue.pop() {
            Some(ev) => {
                debug_assert!(ev.time >= self.now, "event queue went backwards");
                self.now = ev.time;
                self.processed += 1;
                (ev.payload)(self);
                true
            }
            None => false,
        }
    }

    /// Runs until the queue drains or [`Engine::stop`] is called.  Returns the
    /// number of events executed by this call.
    pub fn run(&mut self) -> u64 {
        let before = self.processed;
        while self.step() {}
        self.processed - before
    }

    /// Runs until virtual time would exceed `deadline` (events at exactly
    /// `deadline` are executed), the queue drains, or the engine is stopped.
    /// The clock is left at `min(deadline, time of last executed event)` or at
    /// `deadline` if the queue drained earlier, so repeated calls with
    /// increasing deadlines behave like a wall clock.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        let before = self.processed;
        while !self.stopped {
            match self.queue.peek_time() {
                Some(t) if t <= deadline => {
                    self.step();
                }
                _ => break,
            }
        }
        if !self.stopped && self.now < deadline {
            self.now = deadline;
        }
        self.processed - before
    }

    /// Runs for `span` of virtual time from the current clock.
    pub fn run_for(&mut self, span: SimDuration) -> u64 {
        let deadline = self.now + span;
        self.run_until(deadline)
    }
}

/// Helper for periodic behaviours: reschedules itself every `period` until
/// `until` (exclusive), invoking `tick` each time.  Returns immediately; the
/// ticking happens as the engine runs.
pub fn schedule_periodic<F>(engine: &mut Engine, period: SimDuration, until: SimTime, tick: F)
where
    F: FnMut(&mut Engine) + 'static,
{
    assert!(!period.is_zero(), "periodic events need a non-zero period");
    fn arm<F>(engine: &mut Engine, period: SimDuration, until: SimTime, mut tick: F)
    where
        F: FnMut(&mut Engine) + 'static,
    {
        let next = engine.now() + period;
        if next >= until {
            return;
        }
        engine.schedule_at(next, move |e| {
            tick(e);
            arm(e, period, until, tick);
        });
    }
    arm(engine, period, until, tick);
}

/// Clock-plus-queue engine over plain data events.
///
/// Where [`Engine`] owns boxed closures that receive `&mut Engine`,
/// `TypedEngine` holds an enum (or any payload type) and leaves dispatch to
/// its owner: the owner's driver loop calls [`TypedEngine::pop_due`] until
/// it returns `None`, handles each event with full `&mut` access to its own
/// state, and finishes with [`TypedEngine::advance_clock_to`].  This is the
/// natural shape when the engine is a *field* of the simulation state (as in
/// the overlay), where closure events could not borrow the state mutably.
///
/// ```
/// use p2pmpi_simgrid::engine::TypedEngine;
/// use p2pmpi_simgrid::time::SimTime;
///
/// let mut sim: TypedEngine<&str> = TypedEngine::new();
/// sim.schedule_at(SimTime::from_secs(1), "tick");
/// let deadline = SimTime::from_secs(5);
/// while let Some(ev) = sim.pop_due(deadline) {
///     assert_eq!((ev.time, ev.payload), (SimTime::from_secs(1), "tick"));
/// }
/// sim.advance_clock_to(deadline);
/// assert_eq!(sim.now(), deadline);
/// ```
pub struct TypedEngine<E> {
    now: SimTime,
    queue: EventQueue<E>,
    processed: u64,
}

impl<E> Default for TypedEngine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> TypedEngine<E> {
    /// Creates an engine with the clock at [`SimTime::ZERO`] over the
    /// default binary heap.
    pub fn new() -> Self {
        Self::with_queue_kind(QueueKind::BinaryHeap)
    }

    /// Creates an engine over the given priority structure.
    pub fn with_queue_kind(kind: QueueKind) -> Self {
        TypedEngine {
            now: SimTime::ZERO,
            queue: EventQueue::with_kind(kind),
            processed: 0,
        }
    }

    /// Creates a pre-sized engine over the given priority structure.
    pub fn with_capacity_and_kind(capacity: usize, kind: QueueKind) -> Self {
        TypedEngine {
            now: SimTime::ZERO,
            queue: EventQueue::with_capacity_and_kind(capacity, kind),
            processed: 0,
        }
    }

    /// The priority structure the event queue uses.
    pub fn queue_kind(&self) -> QueueKind {
        self.queue.kind()
    }

    /// Reserves queue capacity for at least `additional` more events.
    pub fn reserve_events(&mut self, additional: usize) {
        self.queue.reserve(additional);
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events delivered so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Number of tickets still queued, including tombstones of cancelled
    /// events awaiting collection (see `EventQueue::queued_len`).
    pub fn queued(&self) -> usize {
        self.queue.queued_len()
    }

    /// Payload-slot capacity of the event queue (the high-water mark of
    /// simultaneously pending events).
    pub fn events_capacity(&self) -> usize {
        self.queue.capacity()
    }

    /// Firing time of the earliest pending event.
    pub fn next_time(&mut self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// The timeline's *safe horizon*: once everything due at or before the
    /// owner's barrier time has been drained, this is a lower bound on when
    /// the timeline's state can next change — between barriers new work
    /// only enters from the owner's own event handlers.  `None` means the
    /// timeline is drained dry and cannot change state at all until
    /// something is scheduled from outside.  This is the per-shard report a
    /// conservatively synchronised parallel driver collects at each barrier
    /// (see the `crate::event` module docs' *Parallel shards* section).
    pub fn safe_horizon(&mut self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Eagerly compacts cancelled events' tombstoned tickets out of the
    /// queue, recycling their payload slots (see [`EventQueue::reap`]).
    /// Returns how many dead tickets were collected.
    pub fn reap_events(&mut self) -> usize {
        self.queue.reap()
    }

    /// Schedules a batch of events in iteration order (consecutive sequence
    /// numbers, so same-instant events fire in batch order), appending each
    /// event's key to `keys`.  Scheduling in the past panics, as in
    /// [`TypedEngine::schedule_at`].
    pub fn schedule_batch(
        &mut self,
        events: impl IntoIterator<Item = (SimTime, E)>,
        keys: &mut Vec<EventKey>,
    ) {
        let now = self.now;
        self.queue.push_batch(
            events.into_iter().inspect(|(at, _)| {
                assert!(
                    *at >= now,
                    "cannot schedule an event in the past ({at} < {now})"
                );
            }),
            keys,
        );
    }

    /// Schedules `event` at absolute time `at`, returning its key for
    /// [`TypedEngine::cancel`].  Scheduling in the past panics.
    pub fn schedule_at(&mut self, at: SimTime, event: E) -> EventKey {
        assert!(
            at >= self.now,
            "cannot schedule an event in the past ({} < {})",
            at,
            self.now
        );
        self.queue.push(at, event)
    }

    /// Schedules `event` after the given delay, returning its key.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) -> EventKey {
        let at = self.now + delay;
        self.queue.push(at, event)
    }

    /// Revokes a pending event, returning its payload; `None` if the key is
    /// stale (already fired or cancelled).
    pub fn cancel(&mut self, key: EventKey) -> Option<E> {
        self.queue.cancel(key)
    }

    /// Revokes a batch of pending events, returning the payloads that were
    /// still live.  Stale keys (already fired or cancelled) are skipped
    /// silently, so fault injectors can mass-revoke everything a crashed
    /// host still had scheduled without tracking which keys already fired.
    pub fn cancel_batch(&mut self, keys: impl IntoIterator<Item = EventKey>) -> Vec<E> {
        keys.into_iter()
            .filter_map(|key| self.queue.cancel(key))
            .collect()
    }

    /// True if `key` still refers to a pending event.
    pub fn is_pending(&self, key: EventKey) -> bool {
        self.queue.is_pending(key)
    }

    /// Delivers the earliest event due at or before `deadline`, advancing
    /// the clock to its firing time; `None` once nothing (more) is due.
    /// The owner's driver loop is `while let Some(ev) = sim.pop_due(t)`,
    /// followed by [`TypedEngine::advance_clock_to`] so idle time up to the
    /// deadline also passes.
    pub fn pop_due(&mut self, deadline: SimTime) -> Option<Scheduled<E>> {
        match self.queue.peek_time() {
            Some(t) if t <= deadline => {
                let ev = self.queue.pop().expect("peek_time found an event");
                debug_assert!(ev.time >= self.now, "event queue went backwards");
                self.now = ev.time;
                self.processed += 1;
                Some(ev)
            }
            _ => None,
        }
    }

    /// Raises the clock to `deadline` if it is ahead of `now` (no-op
    /// otherwise).  Call after draining [`TypedEngine::pop_due`] so repeated
    /// bounded runs behave like a wall clock.
    pub fn advance_clock_to(&mut self, deadline: SimTime) {
        if self.now < deadline {
            self.now = deadline;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn with_capacity_presizes_the_queue() {
        let mut e = Engine::with_capacity(64);
        for i in 0..64u64 {
            e.schedule_at(SimTime::from_secs(i), |_| {});
        }
        assert_eq!(e.pending(), 64);
        e.reserve_events(100);
        assert_eq!(e.run(), 64);
    }

    #[test]
    fn calendar_engine_runs_identically() {
        // The same schedule must produce the same firing order and final
        // clock whichever queue kind backs the engine.
        let run = |kind: QueueKind| {
            let mut e = Engine::with_capacity_and_kind(16, kind);
            assert_eq!(e.queue_kind(), kind);
            let hits = Rc::new(RefCell::new(Vec::new()));
            for i in [7u64, 3, 3, 9, 1] {
                let h = hits.clone();
                e.schedule_in(SimDuration::from_millis(i), move |eng| {
                    h.borrow_mut().push((eng.now(), i));
                });
            }
            e.run();
            (Rc::try_unwrap(hits).unwrap().into_inner(), e.now())
        };
        let (heap_hits, heap_now) = run(QueueKind::BinaryHeap);
        let (cal_hits, cal_now) = run(QueueKind::Calendar);
        assert_eq!(heap_hits, cal_hits);
        assert_eq!(heap_now, cal_now);
        // FIFO among the two 3 ms events: scheduling order is preserved.
        assert_eq!(heap_hits[1].1, 3);
        assert_eq!(heap_hits[2].1, 3);
    }

    #[test]
    fn clock_advances_with_events() {
        let mut e = Engine::new();
        let hits = Rc::new(RefCell::new(Vec::new()));
        let h = hits.clone();
        e.schedule_at(SimTime::from_millis(10), move |eng| {
            h.borrow_mut().push(eng.now());
        });
        let h = hits.clone();
        e.schedule_at(SimTime::from_millis(5), move |eng| {
            h.borrow_mut().push(eng.now());
        });
        assert_eq!(e.run(), 2);
        assert_eq!(
            *hits.borrow(),
            vec![SimTime::from_millis(5), SimTime::from_millis(10)]
        );
        assert_eq!(e.now(), SimTime::from_millis(10));
    }

    #[test]
    fn events_can_schedule_followups() {
        let mut e = Engine::new();
        let count = Rc::new(RefCell::new(0u32));
        let c = count.clone();
        e.schedule_in(SimDuration::from_secs(1), move |eng| {
            *c.borrow_mut() += 1;
            let c2 = c.clone();
            eng.schedule_in(SimDuration::from_secs(1), move |_| {
                *c2.borrow_mut() += 1;
            });
        });
        e.run();
        assert_eq!(*count.borrow(), 2);
        assert_eq!(e.now(), SimTime::from_secs(2));
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut e = Engine::new();
        let fired = Rc::new(RefCell::new(0));
        for i in 1..=10u64 {
            let f = fired.clone();
            e.schedule_at(SimTime::from_secs(i), move |_| {
                *f.borrow_mut() += 1;
            });
        }
        assert_eq!(e.run_until(SimTime::from_secs(4)), 4);
        assert_eq!(*fired.borrow(), 4);
        assert_eq!(e.now(), SimTime::from_secs(4));
        assert_eq!(e.pending(), 6);
        // Advancing further picks up where we left off.
        assert_eq!(e.run_until(SimTime::from_secs(20)), 6);
        assert_eq!(e.now(), SimTime::from_secs(20));
    }

    #[test]
    fn run_for_advances_relative() {
        let mut e = Engine::new();
        e.schedule_at(SimTime::from_secs(3), |_| {});
        e.run_for(SimDuration::from_secs(1));
        assert_eq!(e.now(), SimTime::from_secs(1));
        e.run_for(SimDuration::from_secs(5));
        assert_eq!(e.now(), SimTime::from_secs(6));
        assert_eq!(e.processed(), 1);
    }

    #[test]
    fn stop_halts_run() {
        let mut e = Engine::new();
        let seen = Rc::new(RefCell::new(0));
        for i in 0..5u64 {
            let s = seen.clone();
            e.schedule_at(SimTime::from_secs(i + 1), move |eng| {
                *s.borrow_mut() += 1;
                if *s.borrow() == 2 {
                    eng.stop();
                }
            });
        }
        e.run();
        assert_eq!(*seen.borrow(), 2);
        assert!(e.is_stopped());
        assert_eq!(e.pending(), 3);
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn scheduling_in_the_past_panics() {
        let mut e = Engine::new();
        e.schedule_at(SimTime::from_secs(2), |_| {});
        e.run();
        e.schedule_at(SimTime::from_secs(1), |_| {});
    }

    #[test]
    fn periodic_ticks_until_deadline() {
        let mut e = Engine::new();
        let ticks = Rc::new(RefCell::new(Vec::new()));
        let t = ticks.clone();
        schedule_periodic(
            &mut e,
            SimDuration::from_secs(2),
            SimTime::from_secs(9),
            move |eng| t.borrow_mut().push(eng.now().as_nanos() / 1_000_000_000),
        );
        e.run();
        assert_eq!(*ticks.borrow(), vec![2, 4, 6, 8]);
    }

    #[test]
    #[should_panic(expected = "non-zero period")]
    fn periodic_zero_period_panics() {
        let mut e = Engine::new();
        schedule_periodic(&mut e, SimDuration::ZERO, SimTime::from_secs(1), |_| {});
    }

    #[test]
    fn cancelled_closures_do_not_fire() {
        let mut e = Engine::new();
        let hits = Rc::new(RefCell::new(Vec::new()));
        let h = hits.clone();
        e.schedule_at(SimTime::from_secs(1), move |_| h.borrow_mut().push(1));
        let h = hits.clone();
        let doomed = e.schedule_at(SimTime::from_secs(2), move |_| h.borrow_mut().push(2));
        let h = hits.clone();
        e.schedule_at(SimTime::from_secs(3), move |_| h.borrow_mut().push(3));
        assert!(e.is_pending(doomed));
        assert!(e.cancel(doomed));
        assert!(!e.is_pending(doomed));
        assert_eq!(e.run(), 2);
        assert_eq!(*hits.borrow(), vec![1, 3]);
        // Cancel-after-fire (and double cancel) are no-ops.
        assert!(!e.cancel(doomed));
    }

    #[test]
    fn typed_engine_runs_a_bounded_driver_loop() {
        let mut sim: TypedEngine<u32> = TypedEngine::with_queue_kind(QueueKind::Calendar);
        assert_eq!(sim.queue_kind(), QueueKind::Calendar);
        for i in 1..=6u32 {
            sim.schedule_at(SimTime::from_secs(i as u64), i);
        }
        let mut seen = Vec::new();
        let deadline = SimTime::from_secs(4);
        while let Some(ev) = sim.pop_due(deadline) {
            assert_eq!(sim.now(), ev.time);
            seen.push(ev.payload);
        }
        sim.advance_clock_to(deadline);
        assert_eq!(seen, vec![1, 2, 3, 4]);
        assert_eq!(sim.now(), deadline);
        assert_eq!(sim.pending(), 2);
        assert_eq!(sim.processed(), 4);
        // A later deadline picks up the rest; idle time passes afterwards.
        while let Some(ev) = sim.pop_due(SimTime::from_secs(60)) {
            seen.push(ev.payload);
        }
        sim.advance_clock_to(SimTime::from_secs(60));
        assert_eq!(seen, vec![1, 2, 3, 4, 5, 6]);
        assert_eq!(sim.now(), SimTime::from_secs(60));
    }

    #[test]
    fn typed_engine_cancellation_expresses_rearmed_timeouts() {
        // The heartbeat/timeout idiom the overlay uses: arm a timeout, then
        // cancel and re-arm it when the "reply" arrives earlier.
        let mut sim: TypedEngine<&str> = TypedEngine::new();
        let timeout = sim.schedule_at(SimTime::from_secs(10), "timeout");
        sim.schedule_at(SimTime::from_secs(4), "reply");
        let ev = sim.pop_due(SimTime::MAX).unwrap();
        assert_eq!(ev.payload, "reply");
        assert_eq!(sim.cancel(timeout), Some("timeout"));
        let rearmed = sim.schedule_in(SimDuration::from_secs(10), "timeout");
        let ev = sim.pop_due(SimTime::MAX).unwrap();
        assert_eq!((ev.time, ev.payload), (SimTime::from_secs(14), "timeout"));
        assert!(!sim.is_pending(rearmed));
        assert!(sim.pop_due(SimTime::MAX).is_none());
    }

    #[test]
    fn typed_engine_cancel_batch_skips_stale_keys() {
        // Mass revocation on a crash: some keys already fired, some were
        // cancelled individually — only the live payloads come back.
        let mut sim: TypedEngine<u32> = TypedEngine::new();
        let keys: Vec<_> = (1..=5u32)
            .map(|i| sim.schedule_at(SimTime::from_secs(i as u64), i))
            .collect();
        assert_eq!(sim.pop_due(SimTime::MAX).unwrap().payload, 1);
        assert_eq!(sim.cancel(keys[2]), Some(3));
        let mut revoked = sim.cancel_batch(keys);
        revoked.sort_unstable();
        assert_eq!(revoked, vec![2, 4, 5]);
        assert!(sim.pop_due(SimTime::MAX).is_none());
        assert_eq!(sim.pending(), 0);
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn typed_engine_rejects_past_scheduling() {
        let mut sim: TypedEngine<()> = TypedEngine::new();
        sim.schedule_at(SimTime::from_secs(5), ());
        while sim.pop_due(SimTime::from_secs(10)).is_some() {}
        sim.advance_clock_to(SimTime::from_secs(10));
        sim.schedule_at(SimTime::from_secs(7), ());
    }
}
