//! # p2pmpi-grid5000
//!
//! A model of the Grid'5000 testbed slice used in the paper's evaluation
//! (Section 5): the clusters of Table 1, the RTTs to the Nancy submitter
//! from the Figure 2/3 legends, the 10 Gbps backbone (1 Gbps towards
//! Bordeaux), and ready-made experiment scenarios.
//!
//! The paper ran on the physical testbed; this crate substitutes an
//! in-memory description driving the `p2pmpi-simgrid` cost models, which is
//! sufficient for everything the evaluation measures (where processes are
//! placed, and how placement affects EP/IS run time).
//!
//! ```
//! use p2pmpi_grid5000::testbed::grid5000_topology;
//!
//! let topology = grid5000_topology();
//! assert_eq!(topology.host_count(), 350);
//! assert_eq!(topology.total_cores(), 1040);
//! ```

#![warn(missing_docs)]

pub mod capacity;
pub mod scenario;
pub mod shard;
pub mod sites;
pub mod testbed;

pub use capacity::{host_capacities, IdleSlotIndex};
pub use scenario::{
    allocate_on, coallocation_sweep, paper_demand_steps, paper_ep_process_counts,
    paper_is_process_counts, probe_vs_icmp_ranking, site_host_subset, site_outage_schedule,
    SweepRow,
};
pub use shard::ShardPlan;
pub use sites::{ClusterSpec, RTT_TO_NANCY_MS, SITE_ORDER, TABLE1};
pub use testbed::{
    grid5000_testbed, grid5000_topology, legend, testbed_from_specs, topology_from_specs,
    Grid5000Testbed,
};
