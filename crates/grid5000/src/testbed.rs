//! Building a simulated Grid'5000 testbed from the Table 1 description.

use crate::sites::{
    rtt_between_ms, wan_bandwidth_bps, ClusterSpec, RTT_TO_NANCY_MS, SITE_ORDER, TABLE1,
};
use p2pmpi_overlay::boot::OverlayBuilder;
use p2pmpi_overlay::config::OwnerConfig;
use p2pmpi_overlay::overlay::Overlay;
use p2pmpi_overlay::peer::PeerId;
use p2pmpi_simgrid::event::QueueKind;
use p2pmpi_simgrid::noise::NoiseModel;
use p2pmpi_simgrid::time::SimDuration;
use p2pmpi_simgrid::topology::{NodeSpec, SiteId, Topology, TopologyBuilder};
use std::sync::Arc;

/// Builds the full Grid'5000 topology of Table 1 (6 sites, 8 clusters,
/// 350 hosts, 1040 cores) with the published RTTs and bandwidths.
pub fn grid5000_topology() -> Arc<Topology> {
    topology_from_specs(TABLE1)
}

/// Builds a topology from an arbitrary subset of cluster specs (useful for
/// scaled-down tests).
pub fn topology_from_specs(specs: &[ClusterSpec]) -> Arc<Topology> {
    let mut b = TopologyBuilder::new();
    // Intra-site RTT: the Nancy-to-Nancy figure of the legend.
    b.set_intra_site_rtt(SimDuration::from_micros_f64(87.0));
    let mut site_ids: Vec<(&str, SiteId)> = Vec::new();
    for &site in SITE_ORDER {
        if specs.iter().any(|s| s.site == site) {
            let id = b.add_site(site);
            site_ids.push((site, id));
        }
    }
    for spec in specs {
        let site_id = site_ids
            .iter()
            .find(|(name, _)| *name == spec.site)
            .expect("cluster references a known site")
            .1;
        b.add_cluster(
            site_id,
            spec.cluster,
            spec.cpu_model,
            spec.nodes,
            NodeSpec {
                cores: spec.cores_per_node(),
                cpus: spec.cpus_per_node(),
                ops_per_sec: spec.ops_per_core,
                mem_bytes: spec.mem_per_node,
            },
        );
    }
    for (i, &(site_a, id_a)) in site_ids.iter().enumerate() {
        for &(site_b, id_b) in site_ids.iter().skip(i + 1) {
            let rtt_ms = rtt_between_ms(site_a, site_b).expect("known sites");
            b.set_rtt(id_a, id_b, SimDuration::from_millis_f64(rtt_ms));
            b.set_bandwidth(id_a, id_b, wan_bandwidth_bps(site_a, site_b));
        }
    }
    Arc::new(b.build())
}

/// Standard experiment configuration: a fully-booted overlay with one peer
/// per host, `P` = core count and `J = 1` (the paper's setting), the
/// submitter's cache bootstrapped, and the default probe-noise model.
pub struct Grid5000Testbed {
    /// The Grid'5000 topology.
    pub topology: Arc<Topology>,
    /// The booted overlay.
    pub overlay: Overlay,
    /// The peer acting as submitter (runs on a Nancy host, as in the paper
    /// where "job requests are originated" at Nancy).
    pub submitter: PeerId,
}

/// Builds the standard testbed with the given RNG seed and probe-noise model.
pub fn grid5000_testbed(seed: u64, noise: NoiseModel) -> Grid5000Testbed {
    testbed_from_specs(TABLE1, seed, noise)
}

/// Builds the standard testbed with an explicit event-queue kind for the
/// overlay's simulation timeline.  Day-scale sweep harnesses pass
/// [`QueueKind::Ladder`] (the sweep default for the timeout-heavy
/// timeline); single-job experiments keep the binary heap.
pub fn grid5000_testbed_with_queue(
    seed: u64,
    noise: NoiseModel,
    queue: QueueKind,
) -> Grid5000Testbed {
    testbed_from_specs_with_queue(TABLE1, seed, noise, queue)
}

/// Builds a testbed from a subset of Table 1 (smaller, faster variants for
/// unit and integration tests).
pub fn testbed_from_specs(specs: &[ClusterSpec], seed: u64, noise: NoiseModel) -> Grid5000Testbed {
    testbed_from_specs_with_queue(specs, seed, noise, QueueKind::default())
}

/// [`testbed_from_specs`] with an explicit event-queue kind.
pub fn testbed_from_specs_with_queue(
    specs: &[ClusterSpec],
    seed: u64,
    noise: NoiseModel,
    queue: QueueKind,
) -> Grid5000Testbed {
    let topology = topology_from_specs(specs);
    let submitter_site = topology
        .site_by_name("nancy")
        .map(|s| s.id)
        .unwrap_or_else(|| topology.sites()[0].id);
    let submitter_host = topology
        .hosts_at_site(submitter_site)
        .next()
        .expect("the submitter site has at least one host")
        .id;
    let mut overlay = OverlayBuilder::new(topology.clone())
        .seed(seed)
        .noise(noise)
        .queue_kind(queue)
        .peer_per_host(|h| OwnerConfig::with_procs(h.cores as u32))
        .supernode_on(submitter_host)
        .build();
    overlay.boot_all();
    let submitter = overlay
        .peer_on_host(submitter_host)
        .expect("submitter host carries a peer");
    overlay.bootstrap_peer(submitter);
    Grid5000Testbed {
        topology,
        overlay,
        submitter,
    }
}

/// The RTTs used by the model, for printing experiment legends like the
/// paper's figures: `(site, rtt_ms, hosts, cores)`.
pub fn legend() -> Vec<(&'static str, f64, usize, usize)> {
    crate::sites::totals_by_site()
        .into_iter()
        .map(|(site, hosts, cores)| {
            let rtt = RTT_TO_NANCY_MS
                .iter()
                .find(|(s, _)| *s == site)
                .map(|&(_, ms)| ms)
                .unwrap_or(0.0);
            (site, rtt, hosts, cores)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_topology_matches_table1() {
        let t = grid5000_topology();
        assert_eq!(t.site_count(), 6);
        assert_eq!(t.clusters().len(), 8);
        assert_eq!(t.host_count(), 350);
        assert_eq!(t.total_cores(), 1040);
        let nancy = t.site_by_name("nancy").unwrap().id;
        assert_eq!(t.hosts_at_site(nancy).count(), 60);
        assert_eq!(t.cores_at_site(nancy), 240);
        let sophia = t.site_by_name("sophia").unwrap().id;
        assert_eq!(t.hosts_at_site(sophia).count(), 70);
        assert_eq!(t.cores_at_site(sophia), 216);
    }

    #[test]
    fn rtt_matrix_reflects_published_values() {
        let t = grid5000_topology();
        let nancy = t.site_by_name("nancy").unwrap().id;
        let lyon = t.site_by_name("lyon").unwrap().id;
        let sophia = t.site_by_name("sophia").unwrap().id;
        assert_eq!(
            t.site_rtt(nancy, lyon),
            SimDuration::from_millis_f64(10.576)
        );
        assert_eq!(
            t.site_rtt(nancy, sophia),
            SimDuration::from_millis_f64(17.167)
        );
        assert_eq!(t.site_rtt(nancy, nancy), SimDuration::from_micros_f64(87.0));
    }

    #[test]
    fn bordeaux_bandwidth_is_one_gbps() {
        let t = grid5000_topology();
        let nancy_host = t
            .hosts_at_site(t.site_by_name("nancy").unwrap().id)
            .next()
            .unwrap()
            .id;
        let bordeaux_host = t
            .hosts_at_site(t.site_by_name("bordeaux").unwrap().id)
            .next()
            .unwrap()
            .id;
        let lyon_host = t
            .hosts_at_site(t.site_by_name("lyon").unwrap().id)
            .next()
            .unwrap()
            .id;
        assert_eq!(t.bandwidth_bps(nancy_host, bordeaux_host), 1e9);
        // Other WAN links are only limited by the NIC.
        assert!(t.bandwidth_bps(nancy_host, lyon_host) >= 1e9);
    }

    #[test]
    fn testbed_boots_with_a_nancy_submitter() {
        // Use a reduced spec set to keep the test fast (probing 350 peers
        // happens in the experiment harness, not unit tests).
        let specs: Vec<ClusterSpec> = TABLE1
            .iter()
            .cloned()
            .map(|mut s| {
                let cores_per_node = s.cores_per_node();
                let cpus_per_node = s.cpus_per_node();
                s.nodes = (s.nodes / 10).max(1);
                s.cpus = cpus_per_node * s.nodes;
                s.cores = cores_per_node * s.nodes;
                s
            })
            .collect();
        let tb = testbed_from_specs(&specs, 11, NoiseModel::disabled());
        assert_eq!(
            tb.topology.host(tb.overlay.host_of(tb.submitter)).site,
            tb.topology.site_by_name("nancy").unwrap().id
        );
        assert_eq!(tb.overlay.peer_count(), tb.topology.host_count());
        // The submitter knows every other peer after bootstrap.
        assert_eq!(
            tb.overlay.latency_ranking(tb.submitter).len(),
            tb.topology.host_count() - 1
        );
    }

    #[test]
    fn legend_matches_figure_headers() {
        let l = legend();
        assert_eq!(l.len(), 6);
        assert_eq!(l[0], ("nancy", 0.087, 60, 240));
        assert_eq!(l[5], ("sophia", 17.167, 70, 216));
    }
}
