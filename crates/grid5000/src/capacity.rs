//! Host-capacity and idle-slot queries for the placement search.
//!
//! The search layer (`p2pmpi-bench`'s `placement_search`) proposes migrate
//! moves by sampling *uniformly over idle core slots* of the whole grid —
//! a host with three free cores is three times as likely a destination as
//! one with a single free core, which is exactly how the co-allocator's
//! booking step weights hosts too.  [`IdleSlotIndex`] supports that with a
//! Fenwick (binary-indexed) tree over per-host free-slot counts:
//! `occupy`/`release` and `nth_free_slot` are all `O(log hosts)`, so a
//! 10k-move annealing chain spends microseconds here, not milliseconds.

use p2pmpi_simgrid::topology::{HostId, Topology};

/// Slot capacity of every host, in host-id order — the core count, which is
/// both the owner preference `P` of the paper's experiments and the bound
/// the incremental evaluator (`p2pmpi_mpi::model::PlacementCost`) enforces
/// on migrates.
pub fn host_capacities(topology: &Topology) -> Vec<u32> {
    topology.hosts().iter().map(|h| h.cores as u32).collect()
}

/// Free-slot bookkeeping over all hosts with `O(log hosts)` updates and
/// uniform-over-slots sampling.
#[derive(Debug, Clone)]
pub struct IdleSlotIndex {
    /// Free slots per host.
    free: Vec<u32>,
    /// Fenwick tree over `free` (1-based, prefix sums of free slots).
    tree: Vec<u64>,
    total_free: u64,
}

impl IdleSlotIndex {
    /// An index with every host fully idle.
    pub fn new(topology: &Topology) -> IdleSlotIndex {
        Self::from_capacities(&host_capacities(topology))
    }

    /// An index with explicit initial free-slot counts.
    pub fn from_capacities(free: &[u32]) -> IdleSlotIndex {
        let mut idx = IdleSlotIndex {
            free: free.to_vec(),
            tree: vec![0; free.len() + 1],
            total_free: 0,
        };
        for (h, &f) in free.iter().enumerate() {
            if f > 0 {
                idx.add(h, i64::from(f));
            }
        }
        idx.total_free = free.iter().map(|&f| u64::from(f)).sum();
        idx
    }

    /// An index reflecting an existing assignment: capacities minus the
    /// ranks already placed on each host.
    ///
    /// # Panics
    ///
    /// Panics if the assignment oversubscribes a host.
    pub fn for_placement(topology: &Topology, hosts: &[HostId]) -> IdleSlotIndex {
        let mut free = host_capacities(topology);
        for &h in hosts {
            assert!(free[h.0] > 0, "{h} is oversubscribed");
            free[h.0] -= 1;
        }
        Self::from_capacities(&free)
    }

    fn add(&mut self, host: usize, delta: i64) {
        let mut i = host + 1;
        while i < self.tree.len() {
            self.tree[i] = (self.tree[i] as i64 + delta) as u64;
            i += i & i.wrapping_neg();
        }
    }

    /// Total idle slots across the grid.
    pub fn free_slots(&self) -> u64 {
        self.total_free
    }

    /// Idle slots on one host.
    pub fn free_on(&self, host: HostId) -> u32 {
        self.free[host.0]
    }

    /// Takes one slot on `host`; returns `false` (without mutating) if the
    /// host is full.
    pub fn occupy(&mut self, host: HostId) -> bool {
        if self.free[host.0] == 0 {
            return false;
        }
        self.free[host.0] -= 1;
        self.total_free -= 1;
        self.add(host.0, -1);
        true
    }

    /// Returns one slot on `host`.
    pub fn release(&mut self, host: HostId) {
        self.free[host.0] += 1;
        self.total_free += 1;
        self.add(host.0, 1);
    }

    /// Sets the free-slot count of `host` outright — the resync primitive
    /// of warm cross-job reuse: between two arrivals only a few hosts'
    /// occupancy changed, and each is one `O(log hosts)` Fenwick update
    /// (a no-op when the count is already right).
    pub fn set_free(&mut self, host: HostId, free: u32) {
        let old = self.free[host.0];
        if old == free {
            return;
        }
        self.free[host.0] = free;
        self.total_free = self.total_free + u64::from(free) - u64::from(old);
        self.add(host.0, i64::from(free) - i64::from(old));
    }

    /// The host owning the `k`-th idle slot (0-based, slots ordered by host
    /// id): sample `k` uniformly from `0..free_slots()` for an
    /// uniform-over-slots random destination.
    ///
    /// # Panics
    ///
    /// Panics if `k >= free_slots()`.
    pub fn nth_free_slot(&self, k: u64) -> HostId {
        assert!(k < self.total_free, "slot index out of range");
        let mut remaining = k;
        let mut pos = 0usize;
        let mut mask = self.tree.len().next_power_of_two() >> 1;
        while mask > 0 {
            let next = pos + mask;
            if next < self.tree.len() && self.tree[next] <= remaining {
                remaining -= self.tree[next];
                pos = next;
            }
            mask >>= 1;
        }
        HostId(pos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sites::scaled_table1;
    use crate::testbed::topology_from_specs;

    #[test]
    fn capacities_match_the_table() {
        let t = topology_from_specs(&scaled_table1(1));
        let caps = host_capacities(&t);
        assert_eq!(caps.len(), 350);
        assert_eq!(caps.iter().map(|&c| c as usize).sum::<usize>(), 1040);
        // Nancy grelon nodes are quad-core.
        assert_eq!(caps[0], 4);
    }

    #[test]
    fn occupy_release_and_sampling_agree_with_a_naive_walk() {
        let t = topology_from_specs(&scaled_table1(1));
        let mut idx = IdleSlotIndex::new(&t);
        assert_eq!(idx.free_slots(), 1040);

        // Fill the first two hosts completely.
        let h0 = t.hosts()[0].id;
        let h1 = t.hosts()[1].id;
        for _ in 0..4 {
            assert!(idx.occupy(h0));
            assert!(idx.occupy(h1));
        }
        assert!(!idx.occupy(h0), "full host refuses");
        assert_eq!(idx.free_on(h0), 0);
        assert_eq!(idx.free_slots(), 1032);

        // Slot 0 now lives on the first non-full host.
        assert_eq!(idx.nth_free_slot(0), t.hosts()[2].id);
        // The last slot lives on the last host.
        assert_eq!(idx.nth_free_slot(1031), t.hosts()[349].id);

        // Cross-check a spread of slot indices against a naive prefix walk.
        for k in [1u64, 17, 500, 777, 1000] {
            let mut remaining = k;
            let mut naive = None;
            for h in t.hosts() {
                let f = u64::from(idx.free_on(h.id));
                if remaining < f {
                    naive = Some(h.id);
                    break;
                }
                remaining -= f;
            }
            assert_eq!(idx.nth_free_slot(k), naive.unwrap(), "slot {k}");
        }

        idx.release(h0);
        assert_eq!(idx.free_on(h0), 1);
        assert_eq!(idx.nth_free_slot(0), h0);
    }

    #[test]
    fn set_free_resyncs_like_fresh_construction() {
        let t = topology_from_specs(&scaled_table1(1));
        let mut idx = IdleSlotIndex::new(&t);
        let h0 = t.hosts()[0].id;
        let h7 = t.hosts()[7].id;
        idx.set_free(h0, 0);
        idx.set_free(h7, 1);
        idx.set_free(h7, 1); // no-op on an already-correct count
        let mut caps = host_capacities(&t);
        caps[h0.0] = 0;
        caps[h7.0] = 1;
        let fresh = IdleSlotIndex::from_capacities(&caps);
        assert_eq!(idx.free_slots(), fresh.free_slots());
        for k in [0u64, 3, 500, idx.free_slots() - 1] {
            assert_eq!(idx.nth_free_slot(k), fresh.nth_free_slot(k), "slot {k}");
        }
    }

    #[test]
    fn for_placement_subtracts_the_assignment() {
        let t = topology_from_specs(&scaled_table1(1));
        let h0 = t.hosts()[0].id;
        let hosts = vec![h0, h0, t.hosts()[5].id];
        let idx = IdleSlotIndex::for_placement(&t, &hosts);
        assert_eq!(idx.free_on(h0), 2);
        assert_eq!(idx.free_slots(), 1037);
    }

    #[test]
    #[should_panic(expected = "oversubscribed")]
    fn for_placement_rejects_oversubscription() {
        let t = topology_from_specs(&scaled_table1(1));
        let h1 = t.hosts()[1].id; // grelon: 4 cores
        IdleSlotIndex::for_placement(&t, &[h1; 5]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn sampling_past_the_free_count_panics() {
        let t = topology_from_specs(&scaled_table1(1));
        let idx = IdleSlotIndex::new(&t);
        idx.nth_free_slot(1040);
    }
}
