//! Static description of the Grid'5000 resources used in the paper.
//!
//! This is Table 1 ("Characteristics of available computing resources at the
//! different sites") plus the round-trip times to the Nancy submitter quoted
//! in the legends of Figures 2 and 3, and the link capacities given in
//! Section 5 ("the bandwidth between sites is 10 Gbps everywhere except the
//! link to Bordeaux which is at 1 Gbps").

/// One row of Table 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterSpec {
    /// Grid'5000 site name.
    pub site: &'static str,
    /// Cluster name.
    pub cluster: &'static str,
    /// CPU model.
    pub cpu_model: &'static str,
    /// Number of nodes (hosts).
    pub nodes: usize,
    /// Total CPU sockets.
    pub cpus: usize,
    /// Total cores.
    pub cores: usize,
    /// Estimated per-core rate in operations per second (not in the paper;
    /// derived from the CPU model's clock so that relative speeds are
    /// plausible — absolute times are not expected to match 2008 hardware).
    pub ops_per_core: f64,
    /// Memory per node in bytes (2 GiB was typical of these clusters).
    pub mem_per_node: u64,
}

impl ClusterSpec {
    /// Cores per node.
    pub const fn cores_per_node(&self) -> usize {
        self.cores / self.nodes
    }

    /// CPU sockets per node.
    pub const fn cpus_per_node(&self) -> usize {
        self.cpus / self.nodes
    }
}

const GIB: u64 = 1024 * 1024 * 1024;

/// Table 1 of the paper, verbatim.
pub const TABLE1: &[ClusterSpec] = &[
    ClusterSpec {
        site: "nancy",
        cluster: "grelon",
        cpu_model: "Intel Xeon 5110",
        nodes: 60,
        cpus: 120,
        cores: 240,
        ops_per_core: 1.6e9,
        mem_per_node: 2 * GIB,
    },
    ClusterSpec {
        site: "lyon",
        cluster: "capricorn",
        cpu_model: "AMD Opteron 246",
        nodes: 50,
        cpus: 100,
        cores: 100,
        ops_per_core: 2.0e9,
        mem_per_node: 2 * GIB,
    },
    ClusterSpec {
        site: "rennes",
        cluster: "paravent",
        cpu_model: "AMD Opteron 246",
        nodes: 90,
        cpus: 180,
        cores: 180,
        ops_per_core: 2.0e9,
        mem_per_node: 2 * GIB,
    },
    ClusterSpec {
        site: "bordeaux",
        cluster: "bordereau",
        cpu_model: "AMD Opteron 2218",
        nodes: 60,
        cpus: 120,
        cores: 240,
        ops_per_core: 2.6e9,
        mem_per_node: 2 * GIB,
    },
    ClusterSpec {
        site: "grenoble",
        cluster: "idpot",
        cpu_model: "Intel Xeon IA32",
        nodes: 8,
        cpus: 16,
        cores: 16,
        ops_per_core: 1.5e9,
        mem_per_node: 2 * GIB,
    },
    ClusterSpec {
        site: "grenoble",
        cluster: "idcalc",
        cpu_model: "Intel Itanium 2",
        nodes: 12,
        cpus: 24,
        cores: 48,
        ops_per_core: 1.5e9,
        mem_per_node: 2 * GIB,
    },
    ClusterSpec {
        site: "sophia",
        cluster: "azur",
        cpu_model: "AMD Opteron 246",
        nodes: 32,
        cpus: 64,
        cores: 64,
        ops_per_core: 2.0e9,
        mem_per_node: 2 * GIB,
    },
    ClusterSpec {
        site: "sophia",
        cluster: "sol",
        cpu_model: "AMD Opteron 2218",
        nodes: 38,
        cpus: 76,
        cores: 152,
        ops_per_core: 2.6e9,
        mem_per_node: 2 * GIB,
    },
];

/// Site names in the order the paper lists them (submitter site first, then
/// by ascending RTT to Nancy).
pub const SITE_ORDER: &[&str] = &["nancy", "lyon", "rennes", "bordeaux", "grenoble", "sophia"];

/// Round-trip time from the Nancy submitter to each site, in milliseconds,
/// as printed in the Figure 2/3 legends.  The Nancy entry is the intra-site
/// RTT.
pub const RTT_TO_NANCY_MS: &[(&str, f64)] = &[
    ("nancy", 0.087),
    ("lyon", 10.576),
    ("rennes", 11.612),
    ("bordeaux", 12.674),
    ("grenoble", 13.204),
    ("sophia", 17.167),
];

/// WAN bandwidth in bits per second between two sites: 10 Gbps everywhere,
/// 1 Gbps on any link involving Bordeaux.
pub fn wan_bandwidth_bps(site_a: &str, site_b: &str) -> f64 {
    if site_a == "bordeaux" || site_b == "bordeaux" {
        1e9
    } else {
        10e9
    }
}

/// RTT to Nancy for a given site, in milliseconds.
pub fn rtt_to_nancy_ms(site: &str) -> Option<f64> {
    RTT_TO_NANCY_MS
        .iter()
        .find(|(s, _)| *s == site)
        .map(|&(_, ms)| ms)
}

/// Estimated RTT between two arbitrary sites, in milliseconds.
///
/// The paper only reports RTTs to Nancy.  The French research backbone of
/// the period was close to a star, so the estimate used here is the larger of
/// the two legs to Nancy — good enough to keep "remote" clearly separated
/// from "local", which is all the experiments depend on.
pub fn rtt_between_ms(site_a: &str, site_b: &str) -> Option<f64> {
    if site_a == site_b {
        return Some(0.087);
    }
    let a = rtt_to_nancy_ms(site_a)?;
    let b = rtt_to_nancy_ms(site_b)?;
    if site_a == "nancy" {
        return Some(b);
    }
    if site_b == "nancy" {
        return Some(a);
    }
    Some(a.max(b))
}

/// Table 1 with every cluster's node count multiplied by `factor` (per-node
/// shape, CPU models, link specs unchanged).
///
/// The paper's grid tops out at 1040 cores, which caps honest Figure 4 runs
/// at a few hundred ranks; the analytical collective model
/// (`p2pmpi_mpi::model`) has no such limit, so sweep-scale modeled
/// experiments run on a "what if every site were k× larger" grid that keeps
/// the published per-core rates, RTTs and bandwidths.
pub fn scaled_table1(factor: usize) -> Vec<ClusterSpec> {
    assert!(factor >= 1, "the scale factor must be >= 1");
    TABLE1
        .iter()
        .map(|spec| ClusterSpec {
            nodes: spec.nodes * factor,
            cpus: spec.cpus * factor,
            cores: spec.cores * factor,
            ..*spec
        })
        .collect()
}

/// [`scaled_table1`] with the per-core rates *skewed*: the CPU heterogeneity
/// of Table 1 amplified so that the booking order (ascending RTT from the
/// Nancy submitter) anti-correlates with compute speed — Nancy's grelon
/// nodes run at half their Table-1 rate while the far Bordeaux/Sophia
/// Opteron 2218 clusters run half again faster.
///
/// This is a synthetic stress grid, not a paper artefact: on it, both fixed
/// strategies are provably poor for compute-bound kernels (concentrate
/// fills the slow-but-close Nancy nodes first, spread deals one rank to
/// every slow host it walks past), so it is where a model-driven placement
/// *search* must beat best-of(concentrate, spread) by a clear margin —
/// `perf_report`'s `placement_search` section gates on >3% here.
/// Node shapes, RTTs and bandwidths are unchanged.
pub fn skewed_table1(factor: usize) -> Vec<ClusterSpec> {
    scaled_table1(factor)
        .into_iter()
        .map(|spec| ClusterSpec {
            ops_per_core: match spec.site {
                "nancy" => spec.ops_per_core * 0.5,
                "grenoble" => spec.ops_per_core * 0.8,
                _ if spec.cpu_model.contains("2218") => spec.ops_per_core * 1.5,
                _ => spec.ops_per_core,
            },
            ..spec
        })
        .collect()
}

/// The smallest factor for [`scaled_table1`] such that the grid holds at
/// least `cores` cores.
pub fn scale_factor_for_cores(cores: usize) -> usize {
    let (_, base) = totals();
    cores.div_ceil(base).max(1)
}

/// Totals over Table 1: (hosts, cores).
pub fn totals() -> (usize, usize) {
    TABLE1
        .iter()
        .fold((0, 0), |(h, c), spec| (h + spec.nodes, c + spec.cores))
}

/// Per-site totals: (hosts, cores), in [`SITE_ORDER`] order.
pub fn totals_by_site() -> Vec<(&'static str, usize, usize)> {
    SITE_ORDER
        .iter()
        .map(|&site| {
            let (h, c) = TABLE1
                .iter()
                .filter(|s| s.site == site)
                .fold((0, 0), |(h, c), s| (h + s.nodes, c + s.cores));
            (site, h, c)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_the_paper_totals() {
        // Figure legends: 350 hosts, 1040 cores overall.
        assert_eq!(totals(), (350, 1040));
        let by_site = totals_by_site();
        assert_eq!(by_site[0], ("nancy", 60, 240));
        assert_eq!(by_site[1], ("lyon", 50, 100));
        assert_eq!(by_site[2], ("rennes", 90, 180));
        assert_eq!(by_site[3], ("bordeaux", 60, 240));
        assert_eq!(by_site[4], ("grenoble", 20, 64));
        assert_eq!(by_site[5], ("sophia", 70, 216));
    }

    #[test]
    fn cores_and_cpus_per_node_are_integral() {
        for spec in TABLE1 {
            assert_eq!(spec.cores % spec.nodes, 0, "{}", spec.cluster);
            assert_eq!(spec.cpus % spec.nodes, 0, "{}", spec.cluster);
            assert!(spec.cores_per_node() >= 1);
            assert!(spec.cpus_per_node() >= 1);
        }
        // Spot-check the per-node shapes quoted in the text (dual-CPU nodes,
        // grelon/bordereau/sol/idcalc are 4-core nodes).
        let grelon = &TABLE1[0];
        assert_eq!(grelon.cores_per_node(), 4);
        let capricorn = &TABLE1[1];
        assert_eq!(capricorn.cores_per_node(), 2);
    }

    #[test]
    fn rtt_ranking_matches_the_paper() {
        let mut sites: Vec<&str> = SITE_ORDER.to_vec();
        sites.sort_by(|a, b| {
            rtt_to_nancy_ms(a)
                .unwrap()
                .partial_cmp(&rtt_to_nancy_ms(b).unwrap())
                .unwrap()
        });
        assert_eq!(
            sites,
            vec!["nancy", "lyon", "rennes", "bordeaux", "grenoble", "sophia"]
        );
        assert_eq!(rtt_to_nancy_ms("mars"), None);
    }

    #[test]
    fn scaled_table1_multiplies_nodes_only() {
        let doubled = scaled_table1(2);
        assert_eq!(doubled.len(), TABLE1.len());
        for (orig, scaled) in TABLE1.iter().zip(&doubled) {
            assert_eq!(scaled.nodes, orig.nodes * 2);
            assert_eq!(scaled.cores, orig.cores * 2);
            assert_eq!(scaled.cores_per_node(), orig.cores_per_node());
            assert_eq!(scaled.cpus_per_node(), orig.cpus_per_node());
            assert_eq!(scaled.ops_per_core, orig.ops_per_core);
        }
        assert_eq!(scale_factor_for_cores(1), 1);
        assert_eq!(scale_factor_for_cores(1040), 1);
        assert_eq!(scale_factor_for_cores(1041), 2);
        assert_eq!(scale_factor_for_cores(4096), 4);
    }

    #[test]
    fn skewed_table1_widens_heterogeneity_only() {
        let skewed = skewed_table1(2);
        let plain = scaled_table1(2);
        assert_eq!(skewed.len(), plain.len());
        for (s, p) in skewed.iter().zip(&plain) {
            assert_eq!(s.nodes, p.nodes);
            assert_eq!(s.cores, p.cores);
            assert_eq!(s.cores_per_node(), p.cores_per_node());
        }
        // Nancy halved, the Opteron 2218 clusters (bordereau, sol) boosted.
        assert_eq!(skewed[0].site, "nancy");
        assert_eq!(skewed[0].ops_per_core, plain[0].ops_per_core * 0.5);
        let sol = skewed.iter().find(|s| s.cluster == "sol").unwrap();
        assert_eq!(sol.ops_per_core, 2.6e9 * 1.5);
        // The fast/slow spread is what makes fixed strategies beatable.
        let max = skewed.iter().map(|s| s.ops_per_core).fold(0.0, f64::max);
        let min = skewed
            .iter()
            .map(|s| s.ops_per_core)
            .fold(f64::INFINITY, f64::min);
        assert!(max / min > 4.0, "skew too weak: {max} / {min}");
    }

    #[test]
    fn bordeaux_links_are_slower() {
        assert_eq!(wan_bandwidth_bps("nancy", "bordeaux"), 1e9);
        assert_eq!(wan_bandwidth_bps("bordeaux", "sophia"), 1e9);
        assert_eq!(wan_bandwidth_bps("nancy", "lyon"), 10e9);
    }

    #[test]
    fn inter_site_rtt_estimates_are_sane() {
        assert_eq!(rtt_between_ms("nancy", "lyon"), Some(10.576));
        assert_eq!(rtt_between_ms("lyon", "nancy"), Some(10.576));
        assert_eq!(rtt_between_ms("lyon", "lyon"), Some(0.087));
        // Star estimate: the larger leg.
        assert_eq!(rtt_between_ms("lyon", "sophia"), Some(17.167));
        assert_eq!(rtt_between_ms("unknown", "lyon"), None);
    }
}
