//! Ready-made experiment scenarios over the Grid'5000 testbed.
//!
//! These helpers reproduce the *setup* of Section 5: a submitter at Nancy,
//! one peer per host with `P` = core count, and a sweep of demanded process
//! counts for a given allocation strategy.  The experiment binaries in
//! `p2pmpi-bench` print their output from these.

use crate::testbed::{grid5000_testbed, Grid5000Testbed};
use p2pmpi_core::prelude::*;
use p2pmpi_core::reservation::CoAllocationReport;
use p2pmpi_overlay::{ChurnSchedule, Overlay, PeerId};
use p2pmpi_simgrid::noise::NoiseModel;
use p2pmpi_simgrid::time::{SimDuration, SimTime};
use p2pmpi_simgrid::topology::HostId;

/// One point of a Figure 2/3 style sweep.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// Number of processes demanded (`-n`).
    pub demanded: u32,
    /// Whether the co-allocation succeeded.
    pub success: bool,
    /// Hosts/processes allocated per site (empty if the allocation failed).
    pub usage: Vec<SiteUsage>,
    /// Virtual time the reservation procedure took.
    pub elapsed: SimDuration,
    /// Booking statistics: (booked, granted, refused, dead).
    pub booking: (usize, usize, usize, usize),
}

/// The demanded-process values of Figures 2 and 3: 100 to 600 by steps of 50.
pub fn paper_demand_steps() -> Vec<u32> {
    (2..=12).map(|k| k * 50).collect()
}

/// The process counts of Figure 4: EP uses 32..512, IS uses 32..128.
pub fn paper_ep_process_counts() -> Vec<u32> {
    vec![32, 64, 128, 256, 512]
}

/// The process counts of the IS benchmark in Figure 4.
pub fn paper_is_process_counts() -> Vec<u32> {
    vec![32, 64, 128]
}

/// Runs the "hostname" co-allocation experiment of Section 5.1: for each
/// demanded process count, build a fresh testbed (each point of the paper's
/// figures is an independent run), allocate with `strategy` and tally where
/// processes land.
pub fn coallocation_sweep(
    strategy: StrategyKind,
    demands: &[u32],
    seed: u64,
    noise: NoiseModel,
) -> Vec<SweepRow> {
    demands
        .iter()
        .enumerate()
        .map(|(i, &n)| {
            let mut tb = grid5000_testbed(seed.wrapping_add(i as u64), noise);
            let report = allocate(
                &mut tb.overlay,
                tb.submitter,
                &JobRequest::new(n, strategy, "hostname"),
            );
            sweep_row(&tb, n, &report)
        })
        .collect()
}

/// Runs one allocation on an existing testbed and tallies it (the job is
/// *not* released; callers wanting to reuse the testbed should complete it).
pub fn allocate_on(
    tb: &mut Grid5000Testbed,
    n: u32,
    strategy: StrategyKind,
) -> (CoAllocationReport, SweepRow) {
    let report = allocate(
        &mut tb.overlay,
        tb.submitter,
        &JobRequest::new(n, strategy, "hostname"),
    );
    let row = sweep_row(tb, n, &report);
    (report, row)
}

fn sweep_row(tb: &Grid5000Testbed, demanded: u32, report: &CoAllocationReport) -> SweepRow {
    let usage = report
        .outcome
        .as_ref()
        .map(|alloc| usage_by_site(alloc, &tb.topology))
        .unwrap_or_default();
    SweepRow {
        demanded,
        success: report.is_success(),
        usage,
        elapsed: report.elapsed,
        booking: (report.booked, report.granted, report.refused, report.dead),
    }
}

/// Builds the churn schedule of a correlated site-wide outage: every peer
/// hosted at `site_name` crashes at `at` and recovers at `at + duration`,
/// together — the failure mode a switch or power loss produces, as opposed
/// to the independent flapping of `flapping_churn`.  Peers in `exclude`
/// (typically the submitter, whose host doubles as the supernode's) are
/// spared.  Panics if the site is unknown.
pub fn site_outage_schedule(
    overlay: &Overlay,
    site_name: &str,
    at: SimTime,
    duration: SimDuration,
    exclude: &[PeerId],
) -> ChurnSchedule {
    let topology = overlay.topology().clone();
    let site = topology
        .site_by_name(site_name)
        .unwrap_or_else(|| panic!("unknown site '{site_name}'"))
        .id;
    let mut schedule = ChurnSchedule::new();
    for host in topology.hosts_at_site(site) {
        let Some(peer) = overlay.peer_on_host(host.id) else {
            continue;
        };
        if exclude.contains(&peer) {
            continue;
        }
        schedule.crash(peer, at);
        schedule.recover(peer, at + duration);
    }
    schedule
}

/// The first `count` hosts of `site_name` (topology order — clusters lay
/// racks out contiguously, so a prefix of the host list is a rack-shaped
/// subset) that have a registered peer not in `exclude`.  Returns fewer
/// than `count` hosts when the site is smaller.  This is the host-subset
/// half of a partial-site fault: pass the result to
/// `Overlay::schedule_host_outage` to brown the rack out.  Panics if the
/// site is unknown.
pub fn site_host_subset(
    overlay: &Overlay,
    site_name: &str,
    count: usize,
    exclude: &[PeerId],
) -> Vec<HostId> {
    let topology = overlay.topology().clone();
    let site = topology
        .site_by_name(site_name)
        .unwrap_or_else(|| panic!("unknown site '{site_name}'"))
        .id;
    let mut subset = Vec::with_capacity(count);
    for host in topology.hosts_at_site(site) {
        if subset.len() == count {
            break;
        }
        let Some(peer) = overlay.peer_on_host(host.id) else {
            continue;
        };
        if exclude.contains(&peer) {
            continue;
        }
        subset.push(host.id);
    }
    subset
}

/// Compares the application-level latency ranking measured by the submitter
/// against the ICMP (noise-free) ranking, per site: returns
/// `(site, mean_measured_rtt_ms, icmp_rtt_ms)` rows sorted by measured RTT.
/// Section 5.1 argues the measured values need not match ICMP as long as the
/// ranking is mostly preserved.
pub fn probe_vs_icmp_ranking(tb: &Grid5000Testbed) -> Vec<(String, f64, f64)> {
    let topo = &tb.topology;
    let submitter_host = tb.overlay.host_of(tb.submitter);
    let mut per_site: Vec<(String, f64, f64, usize)> = topo
        .sites()
        .iter()
        .map(|s| (s.name.clone(), 0.0, 0.0, 0usize))
        .collect();
    for entry in tb.overlay.sorted_cache(tb.submitter) {
        let host = entry.descriptor.host;
        let site = topo.host(host).site;
        if let Some(measured) = entry.latency {
            let icmp = topo.rtt(submitter_host, host);
            let slot = &mut per_site[site.0];
            slot.1 += measured.as_millis_f64();
            slot.2 += icmp.as_millis_f64();
            slot.3 += 1;
        }
    }
    let mut rows: Vec<(String, f64, f64)> = per_site
        .into_iter()
        .filter(|(_, _, _, count)| *count > 0)
        .map(|(name, m, i, count)| (name, m / count as f64, i / count as f64))
        .collect();
    rows.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demand_steps_match_the_paper() {
        assert_eq!(
            paper_demand_steps(),
            vec![100, 150, 200, 250, 300, 350, 400, 450, 500, 550, 600]
        );
        assert_eq!(paper_ep_process_counts(), vec![32, 64, 128, 256, 512]);
        assert_eq!(paper_is_process_counts(), vec![32, 64, 128]);
    }

    #[test]
    fn concentrate_stays_at_nancy_for_small_demands() {
        let rows = coallocation_sweep(
            StrategyKind::Concentrate,
            &[100, 200],
            42,
            NoiseModel::disabled(),
        );
        for row in &rows {
            assert!(row.success);
            let nancy = row.usage.iter().find(|u| u.site_name == "nancy").unwrap();
            assert_eq!(nancy.processes, row.demanded as u64);
            let elsewhere: u64 = row
                .usage
                .iter()
                .filter(|u| u.site_name != "nancy")
                .map(|u| u.processes)
                .sum();
            assert_eq!(elsewhere, 0);
        }
    }

    #[test]
    fn spread_uses_one_process_per_host_at_300() {
        let rows = coallocation_sweep(StrategyKind::Spread, &[300], 7, NoiseModel::disabled());
        let row = &rows[0];
        assert!(row.success);
        let hosts: usize = row.usage.iter().map(|u| u.hosts).sum();
        let procs: u64 = row.usage.iter().map(|u| u.processes).sum();
        assert_eq!(procs, 300);
        // 350 hosts available: with one process per host, 300 hosts are used.
        assert_eq!(hosts, 300);
    }

    #[test]
    fn site_outage_takes_a_whole_site_down_and_back() {
        let mut tb = grid5000_testbed(11, NoiseModel::disabled());
        let topo = tb.topology.clone();
        let rennes = topo.site_by_name("rennes").unwrap().id;
        let rennes_peers: Vec<PeerId> = topo
            .hosts_at_site(rennes)
            .filter_map(|h| tb.overlay.peer_on_host(h.id))
            .collect();
        assert!(!rennes_peers.is_empty());
        let schedule = site_outage_schedule(
            &tb.overlay,
            "rennes",
            SimTime::from_secs(100),
            SimDuration::from_secs(50),
            &[tb.submitter],
        );
        let events = schedule.finish();
        assert_eq!(events.len(), rennes_peers.len() * 2);
        let alive_before = tb.overlay.alive_count();
        tb.overlay.schedule_churn(events);
        tb.overlay.advance(SimDuration::from_secs(120));
        // Every Rennes peer is down, together.
        assert_eq!(tb.overlay.alive_count(), alive_before - rennes_peers.len());
        for &p in &rennes_peers {
            assert!(!tb.overlay.node(p).is_alive());
        }
        tb.overlay.advance(SimDuration::from_secs(50));
        assert_eq!(tb.overlay.alive_count(), alive_before);
    }

    #[test]
    #[should_panic(expected = "unknown site")]
    fn site_outage_rejects_unknown_sites() {
        let tb = grid5000_testbed(1, NoiseModel::disabled());
        site_outage_schedule(
            &tb.overlay,
            "atlantis",
            SimTime::ZERO,
            SimDuration::from_secs(1),
            &[],
        );
    }

    #[test]
    fn probe_ranking_orders_nancy_first() {
        let tb = grid5000_testbed(3, NoiseModel::default());
        let rows = probe_vs_icmp_ranking(&tb);
        assert_eq!(rows.len(), 6);
        assert_eq!(rows[0].0, "nancy");
        // Sophia is unambiguously the farthest even with noise.
        assert_eq!(rows.last().unwrap().0, "sophia");
    }
}
