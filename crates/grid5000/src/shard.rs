//! Site→shard partitioning for the sharded parallel sweep driver.
//!
//! A sharded sweep (see `bench::shard`) runs one independent overlay
//! timeline per shard; a shard owns whole *sites* (all clusters of a site
//! stay together, so intra-site traffic never crosses a shard boundary).
//! [`ShardPlan::partition`] assigns sites to shards deterministically:
//!
//! * the submitter site (`nancy`, when present) always lands in shard 0,
//!   so shard 0's testbed boots exactly like the sequential one;
//! * the remaining sites are taken in [`crate::sites::SITE_ORDER`] order
//!   and each goes to the currently least-loaded shard (by total cores,
//!   ties to the lowest shard index) — a greedy core-balance that keeps
//!   per-shard work comparable without any randomness.
//!
//! With one shard the plan is the identity: every cluster spec, in input
//! order, in shard 0.  That is what lets the sharded driver reproduce the
//! sequential sweep bit-for-bit at `shards == 1`.

use crate::sites::ClusterSpec;

/// A deterministic assignment of sites (and their clusters) to shards.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    /// Cluster specs per shard, preserving the input spec order within a
    /// shard.
    shards: Vec<Vec<ClusterSpec>>,
    /// `(site name, shard index)` in first-appearance order.
    site_shard: Vec<(String, usize)>,
}

impl ShardPlan {
    /// Partitions `specs` into `shards` site-aligned, core-balanced shards.
    /// Deterministic in its inputs; see the module docs for the rules.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero or exceeds the number of distinct sites
    /// (an empty shard would have no testbed to run).
    pub fn partition(specs: &[ClusterSpec], shards: usize) -> Self {
        assert!(shards > 0, "a sweep needs at least one shard");
        // Distinct sites in first-appearance order, with their core totals.
        let mut sites: Vec<(&str, usize)> = Vec::new();
        for spec in specs {
            match sites.iter_mut().find(|(name, _)| *name == spec.site) {
                Some((_, cores)) => *cores += spec.cores,
                None => sites.push((spec.site, spec.cores)),
            }
        }
        assert!(
            shards <= sites.len(),
            "{shards} shards over {} sites would leave a shard empty",
            sites.len()
        );
        let mut shard_cores = vec![0usize; shards];
        let mut site_shard: Vec<(String, usize)> = Vec::new();
        // The submitter site anchors shard 0.
        if let Some(pos) = sites.iter().position(|(name, _)| *name == "nancy") {
            let (name, cores) = sites.remove(pos);
            shard_cores[0] += cores;
            site_shard.push((name.to_string(), 0));
        }
        for (name, cores) in sites {
            let lightest = shard_cores
                .iter()
                .enumerate()
                .min_by_key(|&(i, &c)| (c, i))
                .map(|(i, _)| i)
                .expect("shards > 0");
            shard_cores[lightest] += cores;
            site_shard.push((name.to_string(), lightest));
        }
        let mut plan = ShardPlan {
            shards: vec![Vec::new(); shards],
            site_shard,
        };
        for spec in specs {
            let shard = plan
                .shard_of_site(spec.site)
                .expect("every spec's site was assigned");
            plan.shards[shard].push(*spec);
        }
        plan
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The cluster specs assigned to `shard`, in input order.
    pub fn specs_for(&self, shard: usize) -> &[ClusterSpec] {
        &self.shards[shard]
    }

    /// The shard owning `site`, if the site exists in the plan.
    pub fn shard_of_site(&self, site: &str) -> Option<usize> {
        self.site_shard
            .iter()
            .find(|(name, _)| name == site)
            .map(|&(_, shard)| shard)
    }

    /// Total cores per shard (the balance the greedy assignment optimised).
    pub fn cores_per_shard(&self) -> Vec<usize> {
        self.shards
            .iter()
            .map(|specs| specs.iter().map(|s| s.cores).sum())
            .collect()
    }

    /// `(site, shard)` pairs in first-appearance order.
    pub fn site_assignments(&self) -> &[(String, usize)] {
        &self.site_shard
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sites::TABLE1;

    #[test]
    fn one_shard_is_the_identity() {
        let plan = ShardPlan::partition(TABLE1, 1);
        assert_eq!(plan.shard_count(), 1);
        assert_eq!(plan.specs_for(0), TABLE1);
        assert_eq!(plan.shard_of_site("nancy"), Some(0));
        assert_eq!(plan.cores_per_shard(), vec![1040]);
    }

    #[test]
    fn nancy_anchors_shard_zero_and_sites_stay_whole() {
        for shards in 2..=6 {
            let plan = ShardPlan::partition(TABLE1, shards);
            assert_eq!(plan.shard_count(), shards);
            assert_eq!(plan.shard_of_site("nancy"), Some(0), "{shards} shards");
            // Every cluster of a site lands in that site's shard.
            for spec in TABLE1 {
                let shard = plan.shard_of_site(spec.site).unwrap();
                assert!(
                    plan.specs_for(shard).contains(spec),
                    "{} missing from shard {shard} of {shards}",
                    spec.cluster
                );
            }
            // No shard is empty, and nothing is lost or duplicated.
            let total: usize = (0..shards).map(|s| plan.specs_for(s).len()).sum();
            assert_eq!(total, TABLE1.len(), "{shards} shards");
            assert!((0..shards).all(|s| !plan.specs_for(s).is_empty()));
        }
    }

    #[test]
    fn four_shards_balance_cores_within_reason() {
        let plan = ShardPlan::partition(TABLE1, 4);
        let cores = plan.cores_per_shard();
        assert_eq!(cores.iter().sum::<usize>(), 1040);
        // Greedy balance: no shard holds more than half the grid.
        assert!(*cores.iter().max().unwrap() <= 520, "{cores:?}");
        assert!(*cores.iter().min().unwrap() >= 64, "{cores:?}");
    }

    #[test]
    fn partition_is_deterministic() {
        let a = ShardPlan::partition(TABLE1, 3);
        let b = ShardPlan::partition(TABLE1, 3);
        assert_eq!(a.site_assignments(), b.site_assignments());
        for s in 0..3 {
            assert_eq!(a.specs_for(s), b.specs_for(s));
        }
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn more_shards_than_sites_panics() {
        ShardPlan::partition(TABLE1, 7);
    }
}
