//! NAS EP — the Embarrassingly Parallel kernel.
//!
//! Each process generates a disjoint slice of `2^M` pseudo-random pairs,
//! turns the accepted ones into Gaussian deviates with the Marsaglia polar
//! method, accumulates the sums `Σ X`, `Σ Y` and the annulus counts
//! `q[0..10]`, and the job ends with a single `MPI_Allreduce` of those
//! values — "EP does independent computations with a final collective
//! communication" (Section 5).
//!
//! The result is independent of the process count because every process
//! jumps the NPB generator to its own offset.

use crate::classes::Class;
use crate::rng::{NasRng, DEFAULT_SEED};
use p2pmpi_mpi::datatype::ReduceOp;
use p2pmpi_mpi::error::MpiResult;
use p2pmpi_mpi::model::{CollectiveProgram, CompiledSchedule, ModelComm, ScheduleBuilder};
use p2pmpi_mpi::Comm;
use p2pmpi_simgrid::memory::MemoryIntensity;
use p2pmpi_simgrid::time::SimDuration;

/// Abstract operations charged per generated pair.
///
/// The count covers the two `randlc` calls, the polar test and the
/// `ln`/`sqrt` of accepted pairs, *as executed by the paper's Java (MPJ)
/// runtime*: it is calibrated so that EP class B at 32 processes lands in the
/// 7–9 virtual-second range the paper's Figure 4 reports on the 2006-era
/// Grid'5000 CPUs modelled in `p2pmpi-grid5000`.
pub const OPS_PER_PAIR: f64 = 400.0;

/// EP's memory intensity: mostly register arithmetic, but the Java runtime
/// the paper used keeps the deviates in arrays, so co-located processes do
/// contend a little — which is how the paper explains spread's small edge.
pub const EP_MEMORY_INTENSITY: MemoryIntensity = MemoryIntensity::CPU_BOUND;

/// EP configuration.
#[derive(Debug, Clone, Copy)]
pub struct EpConfig {
    /// Problem class (the paper uses class B).
    pub class: Class,
    /// Only one pair in `sample_divisor` is actually generated; the *charged*
    /// compute time always corresponds to the full class, so virtual
    /// makespans stay class-accurate while wall-clock time stays laptop
    /// friendly.  Use 1 (no sampling) when the numerical result matters.
    pub sample_divisor: u64,
}

impl EpConfig {
    /// Full-fidelity configuration (every pair generated).
    pub fn new(class: Class) -> Self {
        EpConfig {
            class,
            sample_divisor: 1,
        }
    }

    /// Sampled configuration for the benchmark harness.
    pub fn sampled(class: Class, sample_divisor: u64) -> Self {
        assert!(sample_divisor >= 1, "the sample divisor must be >= 1");
        EpConfig {
            class,
            sample_divisor,
        }
    }
}

/// The global EP tallies (identical on every rank after the allreduce).
#[derive(Debug, Clone, PartialEq)]
pub struct EpResult {
    /// Sum of the Gaussian X deviates.
    pub sx: f64,
    /// Sum of the Gaussian Y deviates.
    pub sy: f64,
    /// Counts per annulus `l = ⌊max(|X|,|Y|)⌋`.
    pub counts: [i64; 10],
    /// Number of accepted pairs (equals `counts.iter().sum()`).
    pub accepted: i64,
    /// Number of pairs actually generated across all ranks.
    pub generated: u64,
}

impl EpResult {
    /// Internal consistency checks: the annulus counts add up to the number
    /// of accepted pairs, roughly half the pairs are accepted (π/4 of the
    /// unit square), and the Gaussian sums are within a loose statistical
    /// envelope of zero.
    pub fn verify(&self) -> bool {
        if self.counts.iter().sum::<i64>() != self.accepted {
            return false;
        }
        if self.generated == 0 {
            return self.accepted == 0;
        }
        let acceptance = self.accepted as f64 / self.generated as f64;
        if !(0.70..=0.87).contains(&acceptance) {
            return false;
        }
        // |Σ X| grows like sqrt(accepted); allow a generous 6 sigma.
        let bound = 6.0 * (self.accepted.max(1) as f64).sqrt();
        self.sx.abs() <= bound && self.sy.abs() <= bound
    }
}

/// Per-rank share of the pair stream: `(offset, count)` for `rank` out of
/// `size` ranks over `total` pairs.
pub fn rank_share(total: u64, rank: u32, size: u32) -> (u64, u64) {
    let size = size as u64;
    let rank = rank as u64;
    let base = total / size;
    let extra = total % size;
    let count = base + u64::from(rank < extra);
    let offset = rank * base + rank.min(extra);
    (offset, count)
}

/// Runs the EP kernel on one MPI process.
pub fn ep_kernel(comm: &mut Comm, config: &EpConfig) -> MpiResult<EpResult> {
    let total_pairs = config.class.ep_pairs();
    let (offset, my_pairs) = rank_share(total_pairs, comm.rank(), comm.size());
    let executed = (my_pairs / config.sample_divisor).max(u64::from(my_pairs > 0));

    // Each pair consumes two deviates; jump the generator to this rank's
    // slice so the global result does not depend on the process count.
    let mut rng = NasRng::with_offset(DEFAULT_SEED, 2 * offset);

    let mut sx = 0.0f64;
    let mut sy = 0.0f64;
    let mut counts = [0i64; 10];
    for _ in 0..executed {
        let x = 2.0 * rng.next_f64() - 1.0;
        let y = 2.0 * rng.next_f64() - 1.0;
        let t = x * x + y * y;
        if t <= 1.0 && t > 0.0 {
            let factor = (-2.0 * t.ln() / t).sqrt();
            let gx = x * factor;
            let gy = y * factor;
            let l = gx.abs().max(gy.abs()) as usize;
            if l < counts.len() {
                counts[l] += 1;
            }
            sx += gx;
            sy += gy;
        }
    }

    // Charge the compute model for the *full* class regardless of sampling.
    comm.compute(my_pairs as f64 * OPS_PER_PAIR, EP_MEMORY_INTENSITY)?;

    // The final collective: sums and counts.
    let sums = comm.allreduce(ReduceOp::Sum, &[sx, sy])?;
    let mut count_buf = [0i64; 12];
    count_buf[..10].copy_from_slice(&counts);
    count_buf[10] = counts.iter().sum();
    count_buf[11] = executed as i64;
    let totals = comm.allreduce(ReduceOp::Sum, &count_buf)?;

    let mut global_counts = [0i64; 10];
    global_counts.copy_from_slice(&totals[..10]);
    Ok(EpResult {
        sx: sums[0],
        sy: sums[1],
        counts: global_counts,
        accepted: totals[10],
        generated: totals[11] as u64,
    })
}

/// [`ep_kernel`]'s cost structure as a placement-independent collective
/// program: one compute phase, then two fixed-size `MPI_Allreduce`s.  This
/// is the single source of EP's modeled schedule — [`ep_model`] runs it on a
/// [`ModelComm`], [`ep_schedule`] records it for the placement search's
/// incremental evaluator.
pub fn ep_program<P: CollectiveProgram>(p: &mut P, config: &EpConfig) {
    let size = p.size();
    let total_pairs = config.class.ep_pairs();
    p.compute(EP_MEMORY_INTENSITY, |rank| {
        rank_share(total_pairs, rank, size).1 as f64 * OPS_PER_PAIR
    });
    // allreduce(Sum, [sx, sy]): two f64.
    p.allreduce(2 * 8);
    // allreduce(Sum, count_buf): twelve i64.
    p.allreduce(12 * 8);
}

/// Predicts the EP makespan analytically on a [`ModelComm`].
///
/// EP's communication is data-independent (one compute phase, then two
/// `MPI_Allreduce`s of fixed-size buffers), so the modeled schedule is an
/// *exact* replay of [`ep_kernel`]'s clock arithmetic: the predicted
/// makespan equals the executed one bit-for-bit, at any rank count.
pub fn ep_model(model: &mut ModelComm, config: &EpConfig) -> SimDuration {
    ep_program(model, config);
    model.makespan()
}

/// Compiles [`ep_program`] for `size` ranks — the schedule hook the
/// placement search (`p2pmpi_mpi::model::PlacementCost`) evaluates
/// incrementally.
pub fn ep_schedule(config: &EpConfig, size: u32) -> CompiledSchedule {
    let mut b = ScheduleBuilder::new(size);
    ep_program(&mut b, config);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_share_partitions_exactly() {
        for &(total, size) in &[(100u64, 7u32), (1 << 16, 32), (5, 8), (0, 3)] {
            let mut covered = 0u64;
            let mut next_offset = 0u64;
            for rank in 0..size {
                let (offset, count) = rank_share(total, rank, size);
                assert_eq!(offset, next_offset, "ranks must tile the stream");
                next_offset += count;
                covered += count;
            }
            assert_eq!(covered, total);
        }
    }

    #[test]
    fn sampled_config_validown() {
        let c = EpConfig::sampled(Class::B, 64);
        assert_eq!(c.sample_divisor, 64);
        assert_eq!(EpConfig::new(Class::S).sample_divisor, 1);
    }

    #[test]
    #[should_panic(expected = ">= 1")]
    fn zero_divisor_panics() {
        EpConfig::sampled(Class::S, 0);
    }

    #[test]
    fn verify_rejects_inconsistent_results() {
        let good = EpResult {
            sx: 10.0,
            sy: -20.0,
            counts: [400_000, 300_000, 80_000, 9_000, 600, 30, 2, 0, 0, 0],
            accepted: 789_632,
            generated: 1 << 20,
        };
        assert!(good.verify());
        let mut bad_counts = good.clone();
        bad_counts.counts[0] -= 1;
        assert!(!bad_counts.verify());
        let mut bad_acceptance = good.clone();
        bad_acceptance.generated = 1 << 24;
        assert!(!bad_acceptance.verify());
        let mut bad_sum = good;
        bad_sum.sx = 1.0e9;
        assert!(!bad_sum.verify());
    }
}
