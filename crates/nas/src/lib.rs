//! # p2pmpi-nas
//!
//! The two NAS Parallel Benchmark kernels the paper uses to assess the
//! impact of the allocation strategies (Section 5.2 / Figure 4):
//!
//! * [`ep`] — **EP**, Embarrassingly Parallel: independent Gaussian-deviate
//!   generation with one final `Allreduce`.  Compute-dominated.
//! * [`is`] — **IS**, Integer Sort: bucket-sort key redistribution with an
//!   `Allreduce` + `Alltoall` + `Alltoallv` every iteration.
//!   Communication-dominated.
//! * [`ft`] — **FT**, the 3-D FFT's transpose-based cost structure
//!   (model-only: the paper never executed FT, but its global transpose is
//!   the alltoall-heavy pattern the placement search now handles at scale).
//!
//! plus the trivial [`hostname`] program used for the co-allocation
//! experiment of Section 5.1, the [`classes`] table (S/W/A/B/C) and the NPB
//! [`rng`] (`randlc` with seed jumping).
//!
//! ```
//! use p2pmpi_nas::{ep::{ep_kernel, EpConfig}, classes::Class};
//! use p2pmpi_mpi::prelude::*;
//! use p2pmpi_simgrid::topology::{NodeSpec, TopologyBuilder};
//! use std::sync::Arc;
//!
//! let mut b = TopologyBuilder::new();
//! let site = b.add_site("here");
//! b.add_cluster(site, "c", "cpu", 4, NodeSpec::default());
//! let topology = Arc::new(b.build());
//! let hosts: Vec<_> = topology.hosts().iter().map(|h| h.id).collect();
//!
//! let runtime = MpiRuntime::new(topology);
//! let config = EpConfig::new(Class::S);
//! let result = runtime.run(&Placement::one_per_host(&hosts), move |comm| {
//!     ep_kernel(comm, &config)
//! });
//! assert!(result.all_ranks_completed());
//! assert!(result.result_of(0).unwrap().verify());
//! ```

#![warn(missing_docs)]

pub mod classes;
pub mod ep;
pub mod ft;
pub mod hostname;
pub mod is;
pub mod rng;

pub use classes::Class;
pub use ep::{ep_kernel, ep_model, EpConfig, EpResult};
pub use ft::{ft_model, ft_schedule, FtConfig};
pub use hostname::{hostname_kernel, HostnameReport};
pub use is::{is_kernel, is_model, IsConfig, IsResult};
pub use rng::{jump, randlc, NasRng};
