//! The "hostname" program of Section 5.1.
//!
//! "We run a program whose each process simply echoes the name of the host it
//! runs on.  Through this experiment, we observe where processes are mapped
//! depending on the chosen strategy."  Here every rank reports its host id;
//! rank 0 gathers the list, which the experiment harness then tallies per
//! site.

use p2pmpi_mpi::error::MpiResult;
use p2pmpi_mpi::Comm;
use p2pmpi_simgrid::topology::HostId;

/// What each rank reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostnameReport {
    /// This rank's host.
    pub my_host: HostId,
    /// At rank 0: every rank's host, in rank order.  Empty elsewhere.
    pub all_hosts: Vec<HostId>,
}

/// Runs the hostname kernel: every rank sends its host id to rank 0.
pub fn hostname_kernel(comm: &mut Comm) -> MpiResult<HostnameReport> {
    let my_host = comm.host();
    let gathered = comm.gather(0, &[my_host.0 as u64])?;
    Ok(HostnameReport {
        my_host,
        all_hosts: gathered
            .unwrap_or_default()
            .into_iter()
            .map(|h| HostId(h as usize))
            .collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2pmpi_mpi::placement::Placement;
    use p2pmpi_mpi::runtime::MpiRuntime;
    use p2pmpi_simgrid::topology::{NodeSpec, TopologyBuilder};
    use std::sync::Arc;

    #[test]
    fn rank_zero_learns_every_host() {
        let mut b = TopologyBuilder::new();
        let s = b.add_site("s");
        b.add_cluster(s, "c", "cpu", 3, NodeSpec::default());
        let topo = Arc::new(b.build());
        let hosts: Vec<HostId> = topo.hosts().iter().map(|h| h.id).collect();
        let rt = MpiRuntime::new(topo);
        let result = rt.run(&Placement::one_per_host(&hosts), hostname_kernel);
        assert!(result.all_ranks_completed());
        let root = result.result_of(0).unwrap();
        assert_eq!(root.all_hosts, hosts);
        let other = result.result_of(1).unwrap();
        assert!(other.all_hosts.is_empty());
        assert_eq!(other.my_host, hosts[1]);
    }
}
