//! NAS IS — the Integer Sort kernel.
//!
//! IS ranks (sorts) `N` integer keys drawn from an approximately Gaussian
//! distribution over `[0, B_max)`.  The parallel algorithm redistributes the
//! keys by bucket every iteration, which is why the paper describes it as
//! "a sequence of one `MPI_Allreduce`, `MPI_Alltoall` and `MPI_Alltoallv`
//! at each iteration" — communication dominates, making IS the
//! latency-sensitive counterpart to EP in Figure 4.

use crate::classes::Class;
use crate::rng::{NasRng, DEFAULT_SEED};
use p2pmpi_mpi::datatype::ReduceOp;
use p2pmpi_mpi::error::{MpiError, MpiResult};
use p2pmpi_mpi::model::{CollectiveProgram, CompiledSchedule, ModelComm, ScheduleBuilder};
use p2pmpi_mpi::Comm;
use p2pmpi_simgrid::memory::MemoryIntensity;
use p2pmpi_simgrid::time::SimDuration;

/// Number of histogram buckets used for the key redistribution.
pub const NUM_BUCKETS: usize = 1 << 10;

/// Abstract operations charged per key per iteration (bucket counting, the
/// redistribution copy and the local ranking pass).
///
/// Calibrated for the paper's Java (MPJ) runtime — boxing and copying make
/// each key far more expensive than a native counting-sort pass — so that IS
/// class B at 32 processes lands in the few-virtual-seconds range of
/// Figure 4 (right).
pub const OPS_PER_KEY_PER_ITER: f64 = 50.0;

/// IS is memory-bandwidth bound: every iteration streams the whole key array
/// several times.
pub const IS_MEMORY_INTENSITY: MemoryIntensity = MemoryIntensity::MEMORY_BOUND;

/// IS configuration.
#[derive(Debug, Clone, Copy)]
pub struct IsConfig {
    /// Problem class (the paper uses class B).
    pub class: Class,
    /// Divide the number of keys actually sorted by this factor; the charged
    /// compute time still corresponds to the full class.  Keep at 1 for
    /// result verification (class B at full size is laptop friendly).
    pub sample_divisor: u64,
    /// Number of ranking iterations; defaults to the class's 10.
    pub iterations: u32,
}

impl IsConfig {
    /// Full-fidelity configuration.
    pub fn new(class: Class) -> Self {
        IsConfig {
            class,
            sample_divisor: 1,
            iterations: class.is_iterations(),
        }
    }

    /// Sampled configuration (fewer keys actually moved).
    pub fn sampled(class: Class, sample_divisor: u64) -> Self {
        assert!(sample_divisor >= 1, "the sample divisor must be >= 1");
        IsConfig {
            class,
            sample_divisor,
            iterations: class.is_iterations(),
        }
    }

    /// Overrides the iteration count (quick tests).
    pub fn with_iterations(mut self, iterations: u32) -> Self {
        assert!(iterations >= 1, "need at least one iteration");
        self.iterations = iterations;
        self
    }

    /// Number of keys this configuration actually sorts.
    pub fn effective_keys(&self) -> u64 {
        (self.class.is_keys() / self.sample_divisor).max(1)
    }
}

/// Per-rank outcome of the sort (plus the globally reduced checks).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IsResult {
    /// Keys this rank ended up owning after the final redistribution.
    pub my_keys: u64,
    /// Smallest key owned by this rank (0 if none).
    pub my_min: u64,
    /// Largest key owned by this rank (0 if none).
    pub my_max: u64,
    /// Total keys across all ranks after the sort (must equal the input).
    pub total_keys: u64,
    /// True if the global verification passed: counts preserved, keys sorted
    /// locally and rank boundaries ordered.
    pub verified: bool,
    /// Iterations performed.
    pub iterations: u32,
}

/// Generates this rank's share of keys with the NPB generator (sum of four
/// uniforms, giving the benchmark's hump-shaped key distribution).
fn generate_keys(rank: u32, size: u32, total: u64, max_key: u64) -> Vec<u32> {
    let (offset, count) = crate::ep::rank_share(total, rank, size);
    let mut rng = NasRng::with_offset(DEFAULT_SEED, 4 * offset);
    (0..count)
        .map(|_| {
            let s = rng.next_f64() + rng.next_f64() + rng.next_f64() + rng.next_f64();
            ((s / 4.0) * max_key as f64) as u32 % max_key as u32
        })
        .collect()
}

/// Runs the IS kernel on one MPI process.
pub fn is_kernel(comm: &mut Comm, config: &IsConfig) -> MpiResult<IsResult> {
    let size = comm.size();
    let rank = comm.rank();
    let total_keys = config.effective_keys();
    let full_keys = config.class.is_keys();
    let max_key = config.class.is_max_key();
    let buckets = NUM_BUCKETS.min(max_key as usize);

    let keys = generate_keys(rank, size, total_keys, max_key);
    let (_, full_share) = crate::ep::rank_share(full_keys, rank, size);
    let bucket_of = |key: u32| -> usize { (key as u64 * buckets as u64 / max_key) as usize };

    let mut owned: Vec<u32> = Vec::new();
    for _ in 0..config.iterations {
        // Local histogram.
        let mut local_counts = vec![0i64; buckets];
        for &k in &keys {
            local_counts[bucket_of(k)] += 1;
        }
        // Global histogram (MPI_Allreduce).
        let global_counts = comm.allreduce(ReduceOp::Sum, &local_counts)?;

        // Assign contiguous bucket ranges to processors so that each gets
        // roughly total/size keys.
        let bucket_owner = assign_buckets(&global_counts, size, total_keys);

        // How many keys this rank sends to each processor (MPI_Alltoall).
        let mut send_counts = vec![0i64; size as usize];
        for &k in &keys {
            send_counts[bucket_owner[bucket_of(k)] as usize] += 1;
        }
        let recv_counts = comm.alltoall(&send_counts)?;

        // The keys themselves (MPI_Alltoallv).
        let mut blocks: Vec<Vec<u32>> = vec![Vec::new(); size as usize];
        for (dest, block) in blocks.iter_mut().enumerate() {
            block.reserve(send_counts[dest] as usize);
        }
        for &k in &keys {
            blocks[bucket_owner[bucket_of(k)] as usize].push(k);
        }
        let (received, recv_block_counts) = comm.alltoallv(&blocks)?;
        owned = received;

        // Cross-check the Alltoall announcement against what arrived, per
        // source (the flat alltoallv result carries the counts directly).
        for (src, (&announced, &got)) in recv_counts.iter().zip(&recv_block_counts).enumerate() {
            if announced != got as i64 {
                return Err(MpiError::CollectiveMismatch(format!(
                    "rank {src} announced {announced} keys but delivered {got}"
                )));
            }
        }

        // Charge the full-class compute cost of the counting/ranking passes.
        comm.compute(
            full_share as f64 * OPS_PER_KEY_PER_ITER,
            IS_MEMORY_INTENSITY,
        )?;
    }

    // Final local ranking (counting sort) and global verification.
    owned.sort_unstable();
    let my_min = owned.first().copied().unwrap_or(0) as u64;
    let my_max = owned.last().copied().unwrap_or(0) as u64;
    let my_count = owned.len() as u64;

    // Every rank learns every rank's (count, min, max) to verify boundaries.
    let summary = comm.allgather(&[my_count, my_min, my_max])?;
    let mut verified = true;
    let mut grand_total = 0u64;
    let mut prev_max: Option<u64> = None;
    for chunk in summary.chunks_exact(3) {
        let (count, min, max) = (chunk[0], chunk[1], chunk[2]);
        grand_total += count;
        if count > 0 {
            if let Some(p) = prev_max {
                if min < p {
                    verified = false;
                }
            }
            if min > max {
                verified = false;
            }
            prev_max = Some(max);
        }
    }
    if grand_total != total_keys {
        verified = false;
    }
    // Local order is guaranteed by the sort, but double-check ownership is
    // consistent with what we reported.
    if owned.windows(2).any(|w| w[0] > w[1]) {
        verified = false;
    }

    Ok(IsResult {
        my_keys: my_count,
        my_min,
        my_max,
        total_keys: grand_total,
        verified,
        iterations: config.iterations,
    })
}

/// [`is_kernel`]'s cost structure as a placement-independent collective
/// program (see [`is_model`] for the balanced-alltoallv approximation).
/// The single source of IS's modeled schedule: [`is_model`] runs it on a
/// [`ModelComm`], [`is_schedule`] records it for the placement search's
/// incremental evaluator.
pub fn is_program<P: CollectiveProgram>(p: &mut P, config: &IsConfig) {
    let size = p.size();
    let total_keys = config.effective_keys();
    let full_keys = config.class.is_keys();
    let max_key = config.class.is_max_key();
    let buckets = NUM_BUCKETS.min(max_key as usize) as u64;
    for _ in 0..config.iterations {
        // Global histogram: allreduce(Sum) of `buckets` i64 counters.
        p.allreduce(buckets * 8);
        // Send-count exchange: alltoall of one i64 per rank pair.
        p.alltoall(8);
        // Key redistribution: balanced alltoallv of u32 keys.
        p.alltoallv(|src, _dst| {
            let (_, count) = crate::ep::rank_share(total_keys, src, size);
            (count / size as u64) * 4
        });
        // Bucket counting + ranking passes, charged at full-class size.
        p.compute(IS_MEMORY_INTENSITY, |rank| {
            crate::ep::rank_share(full_keys, rank, size).1 as f64 * OPS_PER_KEY_PER_ITER
        });
    }
    // Final verification: allgather of (count, min, max) u64 per rank.
    p.allgather(|_| 3 * 8);
}

/// Predicts the IS makespan analytically on a [`ModelComm`].
///
/// The allreduce/alltoall sizes replay [`is_kernel`] exactly.  The
/// `MPI_Alltoallv` key redistribution is the one data-dependent part: the
/// model substitutes the *balanced* exchange the bucket assignment aims for
/// (each rank sends `count/size` keys to every owner, since every rank draws
/// from the same global key distribution and each owner is assigned ~1/size
/// of its mass).  `perf_report` measures the resulting modeled-vs-executed
/// divergence and fails if it leaves its documented tolerance.
pub fn is_model(model: &mut ModelComm, config: &IsConfig) -> SimDuration {
    is_program(model, config);
    model.makespan()
}

/// Compiles [`is_program`] for `size` ranks — the schedule hook of the
/// placement search.  The incremental evaluator's ring state is pooled
/// transfer tables of O(size · sites) bytes shared across all iterations
/// (see `p2pmpi_mpi::model`'s memory note), so IS stays searchable at
/// 1024+ ranks.
pub fn is_schedule(config: &IsConfig, size: u32) -> CompiledSchedule {
    let mut b = ScheduleBuilder::new(size);
    is_program(&mut b, config);
    b.finish()
}

/// Splits the bucket histogram into `size` contiguous ranges of roughly equal
/// key counts; returns the owning rank of each bucket.
fn assign_buckets(global_counts: &[i64], size: u32, total_keys: u64) -> Vec<u32> {
    let size = size as u64;
    let target = |p: u64| -> u64 { ((p + 1) * total_keys) / size };
    let mut owner = vec![0u32; global_counts.len()];
    let mut cumulative = 0u64;
    let mut proc = 0u64;
    for (bucket, &count) in global_counts.iter().enumerate() {
        while proc + 1 < size && cumulative >= target(proc) {
            proc += 1;
        }
        owner[bucket] = proc as u32;
        cumulative += count as u64;
    }
    owner
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_constructors() {
        let c = IsConfig::new(Class::S);
        assert_eq!(c.iterations, 10);
        assert_eq!(c.effective_keys(), 1 << 16);
        let s = IsConfig::sampled(Class::B, 32).with_iterations(3);
        assert_eq!(s.iterations, 3);
        assert_eq!(s.effective_keys(), (1 << 25) / 32);
    }

    #[test]
    #[should_panic(expected = ">= 1")]
    fn zero_divisor_panics() {
        IsConfig::sampled(Class::S, 0);
    }

    #[test]
    #[should_panic(expected = "at least one iteration")]
    fn zero_iterations_panics() {
        IsConfig::new(Class::S).with_iterations(0);
    }

    #[test]
    fn key_generation_is_bounded_and_deterministic() {
        let a = generate_keys(1, 4, 10_000, 1 << 11);
        let b = generate_keys(1, 4, 10_000, 1 << 11);
        assert_eq!(a, b);
        assert_eq!(a.len(), 2_500);
        assert!(a.iter().all(|&k| (k as u64) < (1 << 11)));
        // The four-uniform sum gives a hump around the middle of the range.
        let mid = a.iter().filter(|&&k| (512..1536).contains(&k)).count();
        assert!(mid > a.len() / 2, "distribution should be centre-heavy");
    }

    #[test]
    fn bucket_assignment_is_monotonic_and_balanced() {
        // A flat histogram over 8 buckets split across 4 procs.
        let counts = vec![10i64; 8];
        let owner = assign_buckets(&counts, 4, 80);
        assert_eq!(owner, vec![0, 0, 1, 1, 2, 2, 3, 3]);
        // Monotonic even for skewed histograms.
        let skewed = vec![70i64, 1, 1, 1, 1, 1, 1, 4];
        let owner = assign_buckets(&skewed, 4, 80);
        let mut sorted = owner.clone();
        sorted.sort_unstable();
        assert_eq!(owner, sorted);
        assert_eq!(owner[0], 0);
        // Every processor index stays within range.
        assert!(owner.iter().all(|&p| p < 4));
    }

    #[test]
    fn bucket_assignment_handles_more_procs_than_buckets() {
        let counts = vec![5i64; 4];
        let owner = assign_buckets(&counts, 16, 20);
        assert!(owner.iter().all(|&p| p < 16));
    }
}
