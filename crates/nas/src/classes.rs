//! NAS problem classes.
//!
//! The paper runs EP and IS at class B.  The smaller classes are used by the
//! test suite and the examples so they complete in milliseconds.

use std::fmt;
use std::str::FromStr;

/// An NPB problem class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Class {
    /// Sample size for smoke tests.
    S,
    /// Workstation size.
    W,
    /// Class A.
    A,
    /// Class B — the size used in the paper's Figure 4.
    B,
    /// Class C (extension; not in the paper's figures).
    C,
}

impl Class {
    /// `log2` of the number of random pairs EP generates (`M`; EP generates
    /// `2^M` pairs).
    pub fn ep_log2_pairs(self) -> u32 {
        match self {
            Class::S => 24,
            Class::W => 25,
            Class::A => 28,
            Class::B => 30,
            Class::C => 32,
        }
    }

    /// Number of random pairs EP generates.
    pub fn ep_pairs(self) -> u64 {
        1u64 << self.ep_log2_pairs()
    }

    /// Number of keys IS sorts.
    pub fn is_keys(self) -> u64 {
        match self {
            Class::S => 1 << 16,
            Class::W => 1 << 20,
            Class::A => 1 << 23,
            Class::B => 1 << 25,
            Class::C => 1 << 27,
        }
    }

    /// Maximum key value (exclusive) for IS.
    pub fn is_max_key(self) -> u64 {
        match self {
            Class::S => 1 << 11,
            Class::W => 1 << 16,
            Class::A => 1 << 19,
            Class::B => 1 << 21,
            Class::C => 1 << 23,
        }
    }

    /// Number of ranking iterations IS performs.
    pub fn is_iterations(self) -> u32 {
        10
    }

    /// FT grid dimensions `(nx, ny, nz)` (the NPB 3-D FFT problem sizes).
    pub fn ft_grid(self) -> (u64, u64, u64) {
        match self {
            Class::S => (64, 64, 64),
            Class::W => (128, 128, 32),
            Class::A => (256, 256, 128),
            Class::B => (512, 256, 256),
            Class::C => (512, 512, 512),
        }
    }

    /// Number of FT evolve/FFT/checksum iterations.
    pub fn ft_iterations(self) -> u32 {
        match self {
            Class::S | Class::W | Class::A => 6,
            Class::B | Class::C => 20,
        }
    }

    /// All classes, smallest first.
    pub fn all() -> [Class; 5] {
        [Class::S, Class::W, Class::A, Class::B, Class::C]
    }
}

impl fmt::Display for Class {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Class::S => "S",
            Class::W => "W",
            Class::A => "A",
            Class::B => "B",
            Class::C => "C",
        };
        f.write_str(s)
    }
}

impl FromStr for Class {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_uppercase().as_str() {
            "S" => Ok(Class::S),
            "W" => Ok(Class::W),
            "A" => Ok(Class::A),
            "B" => Ok(Class::B),
            "C" => Ok(Class::C),
            other => Err(format!("unknown NAS class '{other}'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_grow_with_class() {
        let classes = Class::all();
        for w in classes.windows(2) {
            assert!(w[0].ep_pairs() < w[1].ep_pairs());
            assert!(w[0].is_keys() <= w[1].is_keys());
            assert!(w[0].is_max_key() <= w[1].is_max_key());
        }
    }

    #[test]
    fn class_b_matches_npb() {
        assert_eq!(Class::B.ep_pairs(), 1 << 30);
        assert_eq!(Class::B.is_keys(), 1 << 25);
        assert_eq!(Class::B.is_max_key(), 1 << 21);
        assert_eq!(Class::B.is_iterations(), 10);
    }

    #[test]
    fn parsing_and_display() {
        assert_eq!("b".parse::<Class>().unwrap(), Class::B);
        assert_eq!("S".parse::<Class>().unwrap(), Class::S);
        assert!("Z".parse::<Class>().is_err());
        assert_eq!(Class::W.to_string(), "W");
    }
}
