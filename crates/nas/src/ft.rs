//! NAS FT — the 3-D FFT kernel's *cost structure*, as a transpose-based
//! collective program.
//!
//! NPB FT solves a 3-D PDE with forward/inverse FFTs: each iteration
//! evolves the frequency data, runs FFTs along the two locally-held
//! dimensions, and performs a **global transpose** — an `MPI_Alltoall` in
//! which every rank exchanges a block of its slab with every other rank —
//! before the FFT along the distributed dimension, ending with a checksum
//! `MPI_Allreduce`.  That transpose is the canonical alltoall-heavy pattern
//! beyond the paper's two kernels, and the reason FT exists here: now that
//! the placement evaluator's ring caches are compact (see
//! `p2pmpi_mpi::model`), transpose programs are just as searchable at
//! 1024+ ranks as IS.
//!
//! Unlike [`crate::ep`]/[`crate::is`], FT is *model-only*: there is no
//! executed `ft_kernel` (the paper never ran FT), only the
//! [`CollectiveProgram`] the analytical backend and the placement search
//! consume.  The per-pair transpose block is `0` bytes on the diagonal (the
//! local slab block never leaves the host), which the schedule compiler's
//! off-diagonal compression stores as a `Uniform` ring all the same.

use crate::classes::Class;
use p2pmpi_mpi::model::{CollectiveProgram, CompiledSchedule, ModelComm, ScheduleBuilder};
use p2pmpi_simgrid::memory::MemoryIntensity;
use p2pmpi_simgrid::time::SimDuration;

/// Bytes of one grid point: a complex double.
pub const BYTES_PER_POINT: u64 = 16;

/// Abstract operations charged per grid point per 1-D FFT butterfly level
/// (`5·log2(n)` real flops per point is the classic radix-2 count; the
/// constant folds in the evolve multiply and the index arithmetic of the
/// Java runtime the paper's other kernels are calibrated against).
pub const OPS_PER_POINT_PER_LEVEL: f64 = 8.0;

/// FT streams whole slabs through the FFT passes every iteration — memory
/// pressure comparable to IS's bucket counting.
pub const FT_MEMORY_INTENSITY: MemoryIntensity = MemoryIntensity::MEMORY_BOUND;

/// FT configuration.
#[derive(Debug, Clone, Copy)]
pub struct FtConfig {
    /// Problem class (grid dimensions and iteration count).
    pub class: Class,
    /// Number of evolve/FFT/checksum iterations.
    pub iterations: u32,
}

impl FtConfig {
    /// The class's standard configuration.
    pub fn new(class: Class) -> Self {
        FtConfig {
            class,
            iterations: class.ft_iterations(),
        }
    }

    /// Overrides the iteration count (scaled-down sweeps).
    pub fn with_iterations(mut self, iterations: u32) -> Self {
        assert!(iterations >= 1, "FT needs at least one iteration");
        self.iterations = iterations;
        self
    }

    /// Total grid points of the class.
    pub fn total_points(&self) -> u64 {
        let (nx, ny, nz) = self.class.ft_grid();
        nx * ny * nz
    }
}

/// FT's cost structure as a placement-independent collective program: per
/// iteration an evolve+FFT compute phase, the global transpose (each rank
/// sends its `share/size` block to every *other* rank) and the checksum
/// allreduce.  The single source of FT's modeled schedule — [`ft_model`]
/// runs it on a [`ModelComm`], [`ft_schedule`] records it for the placement
/// search's incremental evaluator.
pub fn ft_program<P: CollectiveProgram>(p: &mut P, config: &FtConfig) {
    let size = p.size();
    let total = config.total_points();
    // 3-D FFT: one butterfly sweep per log2 level of the whole grid.
    let levels = (64 - u64::leading_zeros(total.max(2) - 1)) as f64;
    let block = |src: u32| {
        let (_, share) = crate::ep::rank_share(total, src, size);
        (share / size as u64) * BYTES_PER_POINT
    };
    for _ in 0..config.iterations {
        // Evolve + the two local FFT passes.
        p.compute(FT_MEMORY_INTENSITY, |rank| {
            crate::ep::rank_share(total, rank, size).1 as f64 * OPS_PER_POINT_PER_LEVEL * levels
        });
        // The global transpose: a block to every other rank, nothing to
        // self (the local block is a memory copy, charged to compute).
        p.alltoallv(move |src, dst| if src == dst { 0 } else { block(src) });
        // Checksum: allreduce(Sum) of one complex double.
        p.allreduce(BYTES_PER_POINT);
    }
}

/// Predicts the FT makespan analytically on a [`ModelComm`].
pub fn ft_model(model: &mut ModelComm, config: &FtConfig) -> SimDuration {
    ft_program(model, config);
    model.makespan()
}

/// Compiles [`ft_program`] for `size` ranks — the schedule hook of the
/// placement search.  The transpose rings compile to `Uniform`/`PerSrc`
/// byte structures, so all iterations share one pooled transfer table in
/// the incremental evaluator.
pub fn ft_schedule(config: &FtConfig, size: u32) -> CompiledSchedule {
    let mut b = ScheduleBuilder::new(size);
    ft_program(&mut b, config);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_reflects_class_table() {
        let c = FtConfig::new(Class::B);
        assert_eq!(c.iterations, 20);
        assert_eq!(c.total_points(), 512 * 256 * 256);
        assert_eq!(FtConfig::new(Class::S).iterations, 6);
        let short = FtConfig::new(Class::A).with_iterations(2);
        assert_eq!(short.iterations, 2);
    }

    #[test]
    #[should_panic(expected = "at least one iteration")]
    fn zero_iterations_panics() {
        let _ = FtConfig::new(Class::S).with_iterations(0);
    }

    #[test]
    fn schedule_compiles_with_one_ring_per_iteration() {
        let config = FtConfig::new(Class::S).with_iterations(3);
        let s = ft_schedule(&config, 8);
        assert_eq!(s.size(), 8);
        // Per iteration: compute, the transpose ring, and the checksum
        // allreduce's merged tree run; rings split the tree runs apart.
        assert!(s.segment_count() >= 3 * 3);
        assert!(s.op_count() > 0);
    }
}
