//! The NAS Parallel Benchmarks pseudo-random number generator.
//!
//! NPB kernels (EP, IS) use the linear congruential generator
//! `x_{k+1} = a · x_k  (mod 2^46)` with `a = 5^13`, implemented in double
//! precision exactly as the reference `randlc` routine, so that every process
//! can jump its seed to an arbitrary position of the sequence (binary
//! exponentiation of `a`) and the global result is independent of the number
//! of processes.

/// The multiplier `a = 5^13` of the NPB generator.
pub const A: f64 = 1_220_703_125.0;

/// The default seed used by EP and IS.
pub const DEFAULT_SEED: f64 = 271_828_183.0;

const R23: f64 = 1.0 / 8_388_608.0; // 2^-23
const R46: f64 = R23 * R23;
const T23: f64 = 8_388_608.0; // 2^23
const T46: f64 = T23 * T23;

/// Advances `x` by one LCG step (`x ← a·x mod 2^46`) and returns the
/// uniform deviate `x · 2^-46 ∈ (0, 1)`.
pub fn randlc(x: &mut f64, a: f64) -> f64 {
    // Split a and x into 23-bit halves to compute a*x mod 2^46 exactly in
    // f64 arithmetic (the reference NPB algorithm).
    let t1 = R23 * a;
    let a1 = t1.trunc();
    let a2 = a - T23 * a1;

    let t1 = R23 * *x;
    let x1 = t1.trunc();
    let x2 = *x - T23 * x1;

    let t1 = a1 * x2 + a2 * x1;
    let t2 = (R23 * t1).trunc();
    let z = t1 - T23 * t2;
    let t3 = T23 * z + a2 * x2;
    let t4 = (R46 * t3).trunc();
    *x = t3 - T46 * t4;
    R46 * *x
}

/// Returns the seed obtained from `seed` after `steps` applications of the
/// generator, in `O(log steps)` multiplications (the NPB seed-jumping trick
/// that makes per-process subsequences independent of the process count).
pub fn jump(seed: f64, a: f64, steps: u64) -> f64 {
    let mut b = seed;
    let mut t = a;
    let mut k = steps;
    while k > 0 {
        if k & 1 == 1 {
            randlc(&mut b, t);
        }
        let tc = t;
        randlc(&mut t, tc);
        k >>= 1;
    }
    b
}

/// A convenience stateful wrapper around [`randlc`].
#[derive(Debug, Clone, Copy)]
pub struct NasRng {
    seed: f64,
    a: f64,
}

impl NasRng {
    /// Creates a generator with the default NPB multiplier.
    pub fn new(seed: f64) -> Self {
        NasRng { seed, a: A }
    }

    /// Creates a generator positioned `offset` steps into the sequence that
    /// starts at `seed`.
    pub fn with_offset(seed: f64, offset: u64) -> Self {
        NasRng {
            seed: jump(seed, A, offset),
            a: A,
        }
    }

    /// Next uniform deviate in `(0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        randlc(&mut self.seed, self.a)
    }

    /// Next key in `[0, max)` (the IS key generator uses sums of four
    /// uniforms to approximate a Gaussian; see `is.rs`).
    pub fn next_key(&mut self, max: u64) -> u64 {
        (self.next_f64() * max as f64) as u64 % max
    }

    /// The current raw seed.
    pub fn seed(&self) -> f64 {
        self.seed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deviates_are_in_unit_interval_and_deterministic() {
        let mut a = NasRng::new(DEFAULT_SEED);
        let mut b = NasRng::new(DEFAULT_SEED);
        for _ in 0..10_000 {
            let x = a.next_f64();
            assert!(x > 0.0 && x < 1.0);
            assert_eq!(x, b.next_f64());
        }
    }

    #[test]
    fn sequence_is_uniform_ish() {
        let mut rng = NasRng::new(DEFAULT_SEED);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn jump_matches_stepping() {
        let mut stepped = DEFAULT_SEED;
        for _ in 0..1000 {
            randlc(&mut stepped, A);
        }
        let jumped = jump(DEFAULT_SEED, A, 1000);
        assert_eq!(stepped, jumped);
        // Zero steps is the identity.
        assert_eq!(jump(DEFAULT_SEED, A, 0), DEFAULT_SEED);
    }

    #[test]
    fn disjoint_offsets_give_contiguous_subsequences() {
        // Generating 100 numbers from offset 0 then 100 from offset 100 must
        // equal 200 numbers generated straight through.
        let mut straight = NasRng::new(DEFAULT_SEED);
        let full: Vec<f64> = (0..200).map(|_| straight.next_f64()).collect();
        let mut first = NasRng::with_offset(DEFAULT_SEED, 0);
        let mut second = NasRng::with_offset(DEFAULT_SEED, 100);
        let halves: Vec<f64> = (0..100)
            .map(|_| first.next_f64())
            .chain((0..100).map(|_| second.next_f64()))
            .collect();
        assert_eq!(full, halves);
    }

    #[test]
    fn keys_are_bounded() {
        let mut rng = NasRng::new(DEFAULT_SEED);
        for _ in 0..10_000 {
            assert!(rng.next_key(1 << 11) < (1 << 11));
        }
    }

    #[test]
    fn known_reference_value() {
        // The first deviate of the NPB sequence with the standard seed and
        // multiplier: x1 = (5^13 * 271828183) mod 2^46, scaled by 2^-46.
        let mut x = DEFAULT_SEED;
        let v = randlc(&mut x, A);
        let expected_x = (1_220_703_125u128 * 271_828_183u128 % (1u128 << 46)) as f64;
        assert_eq!(x, expected_x);
        assert!((v - expected_x / (1u64 << 46) as f64).abs() < 1e-15);
    }
}
