//! At-scale pin of the incremental evaluator against the *real* NAS
//! schedules: the compiled `is_schedule` (and `ft_schedule`) driven through
//! a deterministic swap/migrate/undo walk on a multi-site grid, with a full
//! `ModelComm` replay after every accepted move.  The `p2pmpi-mpi` property
//! suite proves the delta contract on random programs; this test proves it
//! on the exact byte structures the placement search optimises — IS's
//! balanced alltoallv (compressed to a pooled transfer table) and FT's
//! zero-diagonal transpose.

use p2pmpi_mpi::model::{Move, PlacementCost};
use p2pmpi_nas::classes::Class;
use p2pmpi_nas::ft::{ft_schedule, FtConfig};
use p2pmpi_nas::is::{is_schedule, IsConfig};
use p2pmpi_simgrid::compute::ComputeModel;
use p2pmpi_simgrid::network::NetworkModel;
use p2pmpi_simgrid::rngutil::seeded;
use p2pmpi_simgrid::time::SimDuration;
use p2pmpi_simgrid::topology::{HostId, NodeSpec, Topology, TopologyBuilder};
use rand::Rng;
use std::sync::Arc;

/// Three sites, 48 quad-core hosts: room for 128 ranks plus idle slots for
/// migrates, with distinct RTTs so site changes rewrite table rows.
fn grid() -> Arc<Topology> {
    let mut b = TopologyBuilder::new();
    let sites: Vec<_> = (0..3).map(|i| b.add_site(format!("s{i}"))).collect();
    for (i, &s) in sites.iter().enumerate() {
        b.add_cluster(
            s,
            format!("c{i}"),
            "cpu",
            16,
            NodeSpec {
                cores: 4,
                ops_per_sec: 1.0e9 + i as f64 * 4.0e8,
                ..NodeSpec::default()
            },
        );
    }
    b.set_rtt(sites[0], sites[1], SimDuration::from_millis(9));
    b.set_rtt(sites[0], sites[2], SimDuration::from_millis(15));
    b.set_rtt(sites[1], sites[2], SimDuration::from_millis(21));
    b.set_bandwidth(sites[1], sites[2], 1e9);
    Arc::new(b.build())
}

/// Round-robin feasible start (a spread-like placement).
fn spread_hosts(topology: &Topology, n: u32) -> Vec<HostId> {
    let hosts = topology.hosts();
    let mut filled = vec![0u32; hosts.len()];
    let mut out = Vec::with_capacity(n as usize);
    'rounds: loop {
        for (i, h) in hosts.iter().enumerate() {
            if filled[i] < h.cores as u32 {
                filled[i] += 1;
                out.push(h.id);
                if out.len() == n as usize {
                    break 'rounds;
                }
            }
        }
    }
    out
}

fn soak(schedule: p2pmpi_mpi::model::CompiledSchedule, n: u32, moves: u32, seed: u64) {
    let topology = grid();
    let capacity: Vec<u32> = topology.hosts().iter().map(|h| h.cores as u32).collect();
    let mut cost = PlacementCost::new(
        Arc::new(schedule),
        spread_hosts(&topology, n),
        capacity,
        NetworkModel::new(topology.clone()),
        ComputeModel::new(topology.clone()),
    );
    assert_eq!(cost.clocks(), &cost.oracle_clocks()[..]);

    let mut rng = seeded(seed);
    let host_count = topology.host_count();
    let mut accepted = 0u32;
    for step in 0..moves {
        let mv = if rng.gen_range(0u32..2) == 0 {
            Move::Swap {
                a: rng.gen_range(0..n),
                b: rng.gen_range(0..n),
            }
        } else {
            Move::Migrate {
                rank: rng.gen_range(0..n),
                to: HostId(rng.gen_range(0..host_count)),
            }
        };
        let before_cost = cost.cost();
        let before_hosts = cost.hosts().to_vec();
        if cost.apply(mv).is_err() {
            assert_eq!(cost.cost(), before_cost);
            continue;
        }
        accepted += 1;
        assert_eq!(
            cost.clocks(),
            &cost.oracle_clocks()[..],
            "step {step}: delta diverged from the oracle after {mv:?}"
        );
        if step % 3 == 0 {
            cost.undo();
            assert_eq!(cost.cost(), before_cost);
            assert_eq!(cost.hosts(), &before_hosts[..]);
            assert_eq!(cost.clocks(), &cost.oracle_clocks()[..]);
        } else {
            cost.commit();
        }
    }
    assert!(accepted >= moves / 2, "the walk barely moved ({accepted})");
}

#[test]
fn is_schedule_soak_matches_oracle_at_128() {
    let config = IsConfig::sampled(Class::S, 4).with_iterations(4);
    soak(is_schedule(&config, 128), 128, 18, 42);
}

#[test]
fn ft_schedule_soak_matches_oracle_at_96() {
    let config = FtConfig::new(Class::S).with_iterations(3);
    soak(ft_schedule(&config, 96), 96, 18, 7);
}
