//! Property test: the LogGP analytical model (`p2pmpi_mpi::model`) and the
//! executed thread-per-rank runtime must agree on collective completion
//! times — **exactly**, per rank — for any placement and any sequence of
//! collectives with data-independent sizes.
//!
//! This is the fidelity contract the modeled Figure 4 sweeps stand on: if
//! the model's tree/ring schedules or clock arithmetic ever drift from the
//! executed `Comm`, random small placements (≤ 16 ranks over a three-site
//! topology with co-location and cross-site hops) catch it here.

use p2pmpi_mpi::datatype::ReduceOp;
use p2pmpi_mpi::model::CollectiveProgram;
use p2pmpi_mpi::placement::{Placement, ProcSpec};
use p2pmpi_mpi::runtime::MpiRuntime;
use p2pmpi_simgrid::rngutil::seeded;
use p2pmpi_simgrid::topology::{HostId, NodeSpec, Topology, TopologyBuilder};
use proptest::{prop_assert, prop_assert_eq, proptest};
use rand::Rng;
use std::sync::Arc;

/// Three sites with distinct RTTs (one deliberately slow like Bordeaux's
/// 1 Gbps link) and eight hosts, so random placements mix loopback,
/// intra-site and cross-site messaging.
fn topology() -> Arc<Topology> {
    let mut b = TopologyBuilder::new();
    let near = b.add_site("near");
    let mid = b.add_site("mid");
    let far = b.add_site("far");
    b.add_cluster(near, "n", "cpu", 4, NodeSpec::default());
    b.add_cluster(mid, "m", "cpu", 2, NodeSpec::default());
    b.add_cluster(
        far,
        "f",
        "cpu",
        2,
        NodeSpec {
            cores: 4,
            ops_per_sec: 1.5e9,
            ..NodeSpec::default()
        },
    );
    b.set_rtt(
        near,
        mid,
        p2pmpi_simgrid::time::SimDuration::from_millis(11),
    );
    b.set_rtt(
        near,
        far,
        p2pmpi_simgrid::time::SimDuration::from_millis(17),
    );
    b.set_rtt(mid, far, p2pmpi_simgrid::time::SimDuration::from_millis(17));
    b.set_bandwidth(near, far, 1e9);
    Arc::new(b.build())
}

/// An unreplicated placement of `n` ranks on uniformly random hosts
/// (co-location allowed — it exercises loopback costs and the residents
/// count used by the compute model).
fn random_placement(topology: &Topology, n: u32, seed: u64) -> Placement {
    let mut rng = seeded(seed);
    let hosts = topology.host_count();
    Placement {
        processes: n,
        replication: 1,
        procs: (0..n)
            .map(|rank| ProcSpec {
                rank,
                replica: 0,
                host: HostId(rng.gen_range(0..hosts)),
            })
            .collect(),
    }
}

proptest! {
    #[test]
    fn modeled_clocks_equal_executed_clocks(
        n in 2u32..17,
        placement_seed in 0u64..1_000_000,
        bcast_len in 1usize..700,
        reduce_len in 1usize..300,
        block_len in 1usize..50,
        vstride in 0usize..37,
        root in 0u32..16,
    ) {
        let topology = topology();
        let placement = random_placement(&topology, n, placement_seed);
        prop_assert!(placement.validate().is_ok());
        let runtime = MpiRuntime::new(topology.clone());
        let root = root % n;

        // Executed: every collective once, with sizes derived from the case.
        let executed = runtime.run(&placement, move |comm| {
            let rank = comm.rank();
            let size = comm.size();
            comm.compute(1e6 * (rank as f64 + 1.0), p2pmpi_simgrid::memory::MemoryIntensity::MEMORY_BOUND)?;
            comm.bcast(root, if rank == root { vec![1u8; bcast_len] } else { vec![] })?;
            comm.allreduce(ReduceOp::Max, &vec![rank as i64; reduce_len])?;
            comm.alltoall(&vec![rank as i32; block_len * size as usize])?;
            let blocks: Vec<Vec<u32>> = (0..size)
                .map(|dst| vec![rank; (rank as usize + dst as usize * vstride) % 91])
                .collect();
            comm.alltoallv(&blocks)?;
            comm.gather(root, &vec![0f64; rank as usize % 7 + 1])?;
            comm.scatter(root, &vec![0u64; block_len * size as usize], block_len)?;
            comm.allgather(&vec![rank as u64; rank as usize % 5])?;
            comm.barrier()?;
            Ok(())
        });
        prop_assert!(executed.all_ranks_completed(), "failures: {:?}", executed.failures());

        // Modeled: the same sequence expressed in bytes.
        let mut model = runtime.model_comm(&placement);
        model.compute(p2pmpi_simgrid::memory::MemoryIntensity::MEMORY_BOUND, |rank| {
            1e6 * (rank as f64 + 1.0)
        });
        model.bcast(root, bcast_len as u64);
        model.allreduce(reduce_len as u64 * 8);
        model.alltoall(block_len as u64 * 4);
        model.alltoallv(|src, dst| ((src as usize + dst as usize * vstride) % 91) as u64 * 4);
        model.gather(root, |rank| (rank as u64 % 7 + 1) * 8);
        model.scatter(root, block_len as u64 * 8);
        model.allgather(|rank| (rank % 5) as u64 * 8);
        model.barrier();

        for rank in 0..n {
            let executed_clock = executed
                .instances
                .iter()
                .find(|i| i.rank == rank)
                .expect("every rank has an instance")
                .clock;
            prop_assert_eq!(
                model.clock(rank),
                executed_clock,
                "rank {} of {} (placement seed {}): modeled clock diverged",
                rank,
                n,
                placement_seed
            );
        }
        prop_assert_eq!(model.makespan(), executed.makespan);
        prop_assert_eq!(model.stats().messages_sent, executed.stats.messages_sent);
        prop_assert_eq!(model.stats().bytes_sent, executed.stats.bytes_sent);
    }
}
