//! Property test of the incremental placement evaluator: after any sequence
//! of swap/migrate moves (committed or undone) over any placement and any
//! collective program, `PlacementCost`'s cached per-rank clocks must equal a
//! from-scratch `ModelComm` replay of the same program **exactly** — the
//! delta-evaluation contract of `p2pmpi_mpi::model`.

use p2pmpi_mpi::model::{CollectiveProgram, Move, MoveError, PlacementCost, ScheduleBuilder};
use p2pmpi_simgrid::compute::ComputeModel;
use p2pmpi_simgrid::memory::MemoryIntensity;
use p2pmpi_simgrid::network::NetworkModel;
use p2pmpi_simgrid::rngutil::seeded;
use p2pmpi_simgrid::topology::{HostId, NodeSpec, Topology, TopologyBuilder};
use proptest::{prop_assert, prop_assert_eq, proptest};
use rand::Rng;
use std::sync::Arc;

/// Three sites with distinct RTTs (one on a slow 1 Gbps link, like
/// Bordeaux) and eight dual-core hosts, so random placements and moves mix
/// loopback, intra-site and cross-site messaging plus co-location.
fn topology() -> Arc<Topology> {
    let mut b = TopologyBuilder::new();
    let near = b.add_site("near");
    let mid = b.add_site("mid");
    let far = b.add_site("far");
    b.add_cluster(near, "n", "cpu", 4, NodeSpec::default());
    b.add_cluster(mid, "m", "cpu", 2, NodeSpec::default());
    b.add_cluster(
        far,
        "f",
        "cpu",
        2,
        NodeSpec {
            cores: 4,
            ops_per_sec: 1.5e9,
            ..NodeSpec::default()
        },
    );
    b.set_rtt(
        near,
        mid,
        p2pmpi_simgrid::time::SimDuration::from_millis(11),
    );
    b.set_rtt(
        near,
        far,
        p2pmpi_simgrid::time::SimDuration::from_millis(17),
    );
    b.set_rtt(mid, far, p2pmpi_simgrid::time::SimDuration::from_millis(17));
    b.set_bandwidth(near, far, 1e9);
    Arc::new(b.build())
}

/// A random collective program mixing every schedule shape the compiler
/// knows (compute, trees, rings, advance).
fn random_program<P: CollectiveProgram>(p: &mut P, program_seed: u64) {
    let mut rng = seeded(program_seed);
    let n = p.size();
    let steps = rng.gen_range(2usize..6);
    for _ in 0..steps {
        match rng.gen_range(0u32..8) {
            0 => {
                let scale = rng.gen_range(1u64..50) as f64;
                p.compute(MemoryIntensity::MEMORY_BOUND, |r| {
                    1e6 * scale * (r as f64 + 1.0)
                });
            }
            1 => p.bcast(rng.gen_range(0..n), rng.gen_range(1u64..5000)),
            2 => p.reduce(rng.gen_range(0..n), rng.gen_range(1u64..2000)),
            3 => p.allreduce(rng.gen_range(1u64..1000)),
            4 => p.alltoall(rng.gen_range(1u64..500)),
            5 => {
                let stride = rng.gen_range(0u64..37);
                p.alltoallv(move |src, dst| (src as u64 + dst as u64 * stride) % 91 * 4);
            }
            6 => p.allgather(|r| (r as u64 % 5) * 8 + 8),
            _ => p.barrier(),
        }
    }
}

/// A random *ring-dominated* program: several alltoall(v) segments back to
/// back — uniform, per-source and genuinely per-pair byte structures — with
/// the occasional compute or tree wedged between.  This is the shape that
/// stresses the pooled ring transfer tables (and the per-pair fallback
/// path) far harder than [`random_program`]'s one-in-eight ring draw.
fn ring_heavy_program<P: CollectiveProgram>(p: &mut P, program_seed: u64) {
    let mut rng = seeded(program_seed);
    let rings = rng.gen_range(3usize..7);
    for _ in 0..rings {
        match rng.gen_range(0u32..4) {
            // Uniform: every pair the same (compresses to one table row set).
            0 => p.alltoall(rng.gen_range(1u64..4000)),
            // Per-source: dst-independent rows, zero diagonal (FT-shaped).
            1 => {
                let scale = rng.gen_range(1u64..64);
                p.alltoallv(move |src, dst| {
                    if src == dst {
                        0
                    } else {
                        (src as u64 % 7 + 1) * scale * 8
                    }
                });
            }
            // Per-pair: rows genuinely differ, so no table is built and the
            // wavefront must fall back to per-receive transfer costing.
            2 => {
                let stride = rng.gen_range(1u64..29);
                p.alltoallv(move |src, dst| (src as u64 * 13 + dst as u64 * stride) % 97 * 8);
            }
            // A wedge between rings, so ring exits feed non-ring segments.
            _ => match rng.gen_range(0u32..3) {
                0 => p.allreduce(rng.gen_range(1u64..500)),
                1 => {
                    let scale = rng.gen_range(1u64..20) as f64;
                    p.compute(MemoryIntensity::CPU_BOUND, move |r| {
                        1e5 * scale * (r % 5 + 1) as f64
                    });
                }
                _ => p.barrier(),
            },
        }
    }
}

/// Assigns `n` ranks to random hosts without exceeding any host's core
/// capacity (migrates need somewhere to go, so capacity-feasible starts
/// matter).
fn random_feasible_hosts(topology: &Topology, n: u32, seed: u64) -> Vec<HostId> {
    let mut rng = seeded(seed);
    let mut free: Vec<u32> = topology.hosts().iter().map(|h| h.cores as u32).collect();
    (0..n)
        .map(|_| loop {
            let h = rng.gen_range(0..free.len());
            if free[h] > 0 {
                free[h] -= 1;
                break HostId(h);
            }
        })
        .collect()
}

proptest! {
    #[test]
    fn delta_after_any_move_sequence_equals_full_replay(
        n in 2u32..17,
        placement_seed in 0u64..1_000_000,
        program_seed in 0u64..1_000_000,
        move_seed in 0u64..1_000_000,
    ) {
        let topology = topology();
        let mut b = ScheduleBuilder::new(n);
        random_program(&mut b, program_seed);
        let schedule = Arc::new(b.finish());
        let hosts = random_feasible_hosts(&topology, n, placement_seed);
        let capacity: Vec<u32> = topology.hosts().iter().map(|h| h.cores as u32).collect();
        let mut cost = PlacementCost::new(
            schedule,
            hosts,
            capacity,
            NetworkModel::new(topology.clone()),
            ComputeModel::new(topology.clone()),
        );

        // At rest the caches are a full replay by construction.
        prop_assert_eq!(cost.clocks(), &cost.oracle_clocks()[..]);

        let mut rng = seeded(move_seed);
        let host_count = topology.host_count();
        for _ in 0..12 {
            let mv = if rng.gen_range(0u32..2) == 0 {
                Move::Swap {
                    a: rng.gen_range(0..n),
                    b: rng.gen_range(0..n),
                }
            } else {
                // Deliberately unfiltered: some migrates violate capacity
                // and must be rejected without touching any state.
                Move::Migrate {
                    rank: rng.gen_range(0..n),
                    to: HostId(rng.gen_range(0..host_count)),
                }
            };
            let before_cost = cost.cost();
            let before_hosts = cost.hosts().to_vec();
            match cost.apply(mv) {
                Err(MoveError::CapacityExceeded { .. }) => {
                    // Rejection is mutation-free.
                    prop_assert_eq!(cost.cost(), before_cost);
                    prop_assert_eq!(cost.hosts(), &before_hosts[..]);
                    prop_assert_eq!(cost.clocks(), &cost.oracle_clocks()[..]);
                }
                Ok(new_cost) => {
                    // Delta-after-move equals the from-scratch replay,
                    // per rank, bit for bit.
                    let oracle = cost.oracle_clocks();
                    prop_assert_eq!(cost.clocks(), &oracle[..],
                        "delta clocks diverged from the oracle after {:?}", mv);
                    let oracle_max = oracle.iter().copied().max().unwrap();
                    prop_assert_eq!(
                        new_cost,
                        oracle_max.saturating_since(p2pmpi_simgrid::time::SimTime::ZERO)
                    );
                    if rng.gen_range(0u32..3) == 0 {
                        // Revert: the pre-move state must come back exactly.
                        cost.undo();
                        prop_assert_eq!(cost.cost(), before_cost);
                        prop_assert_eq!(cost.hosts(), &before_hosts[..]);
                        prop_assert_eq!(cost.clocks(), &cost.oracle_clocks()[..]);
                    } else {
                        cost.commit();
                    }
                }
            }
        }
        // The capacity invariant survived the walk.
        let mut used = vec![0u32; host_count];
        for &h in cost.hosts() {
            used[h.0] += 1;
        }
        for (h, &u) in used.iter().enumerate() {
            prop_assert!(u <= topology.host(HostId(h)).cores as u32);
        }
    }

    #[test]
    fn ring_heavy_delta_equals_full_replay(
        n in 8u32..21,
        placement_seed in 0u64..1_000_000,
        program_seed in 0u64..1_000_000,
        move_seed in 0u64..1_000_000,
    ) {
        let topology = topology();
        let mut b = ScheduleBuilder::new(n);
        ring_heavy_program(&mut b, program_seed);
        let schedule = Arc::new(b.finish());
        let hosts = random_feasible_hosts(&topology, n, placement_seed);
        let capacity: Vec<u32> = topology.hosts().iter().map(|h| h.cores as u32).collect();
        let mut cost = PlacementCost::new(
            schedule,
            hosts,
            capacity,
            NetworkModel::new(topology.clone()),
            ComputeModel::new(topology.clone()),
        );
        prop_assert_eq!(cost.clocks(), &cost.oracle_clocks()[..]);

        let mut rng = seeded(move_seed);
        let host_count = topology.host_count();
        for _ in 0..10 {
            let mv = if rng.gen_range(0u32..2) == 0 {
                Move::Swap { a: rng.gen_range(0..n), b: rng.gen_range(0..n) }
            } else {
                Move::Migrate {
                    rank: rng.gen_range(0..n),
                    to: HostId(rng.gen_range(0..host_count)),
                }
            };
            let before_cost = cost.cost();
            if cost.apply(mv).is_err() {
                prop_assert_eq!(cost.cost(), before_cost);
                continue;
            }
            prop_assert_eq!(cost.clocks(), &cost.oracle_clocks()[..],
                "ring-heavy delta diverged from the oracle after {:?}", mv);
            if rng.gen_range(0u32..3) == 0 {
                cost.undo();
                prop_assert_eq!(cost.cost(), before_cost);
                prop_assert_eq!(cost.clocks(), &cost.oracle_clocks()[..]);
            } else {
                cost.commit();
            }
        }
    }

    /// The cross-job warm-reuse contract (`PlacementCost::rebase`): after
    /// any interleaving of occupancy churn — other jobs occupying and
    /// releasing cores between arrivals — and committed local moves, a
    /// rebased warm evaluator must be indistinguishable from a fresh build
    /// at the same placement and capacities: same makespan, same per-rank
    /// clocks, and the same answer to every subsequent move.
    #[test]
    fn rebased_warm_cache_equals_fresh_build_after_occupancy_churn(
        n in 2u32..11,
        program_seed in 0u64..1_000_000,
        churn_seed in 0u64..1_000_000,
    ) {
        let topology = topology();
        let mut b = ScheduleBuilder::new(n);
        random_program(&mut b, program_seed);
        let schedule = Arc::new(b.finish());
        let full: Vec<u32> = topology.hosts().iter().map(|h| h.cores as u32).collect();
        let host_count = topology.host_count();
        let mut rng = seeded(churn_seed);

        // Boot the warm evaluator once, on the unconstrained grid.
        let boot_seed = rng.gen::<u64>();
        let mut warm = PlacementCost::new(
            schedule.clone(),
            random_feasible_hosts(&topology, n, boot_seed),
            full.clone(),
            NetworkModel::new(topology.clone()),
            ComputeModel::new(topology.clone()),
        );

        for _round in 0..4 {
            // New arrival: every host's free capacity has moved anywhere
            // from wholly busy to wholly free since last time, re-rolled
            // until the grid can still hold the job.
            let caps: Vec<u32> = loop {
                let caps: Vec<u32> = full.iter().map(|&c| rng.gen_range(0..=c)).collect();
                if caps.iter().map(|&c| u64::from(c)).sum::<u64>() >= u64::from(n) {
                    break caps;
                }
            };
            // A feasible placement under the new occupancy.
            let mut free = caps.clone();
            let hosts: Vec<HostId> = (0..n)
                .map(|_| loop {
                    let h = rng.gen_range(0..free.len());
                    if free[h] > 0 {
                        free[h] -= 1;
                        break HostId(h);
                    }
                })
                .collect();

            let warm_makespan = warm.rebase(&hosts, &caps);
            let mut fresh = PlacementCost::new(
                schedule.clone(),
                hosts.clone(),
                caps.clone(),
                NetworkModel::new(topology.clone()),
                ComputeModel::new(topology.clone()),
            );
            prop_assert_eq!(warm_makespan, fresh.cost());
            prop_assert_eq!(warm.cost(), fresh.cost());
            prop_assert_eq!(warm.hosts(), fresh.hosts());
            prop_assert_eq!(warm.clocks(), fresh.clocks());

            // Not just numerically right at rest: the warm cache must be
            // the same evaluator state, agreeing move for move (accepted,
            // rejected, undone or committed) until the next arrival.
            for _ in 0..4 {
                let mv = if rng.gen_range(0u32..2) == 0 {
                    Move::Swap {
                        a: rng.gen_range(0..n),
                        b: rng.gen_range(0..n),
                    }
                } else {
                    Move::Migrate {
                        rank: rng.gen_range(0..n),
                        to: HostId(rng.gen_range(0..host_count)),
                    }
                };
                match (warm.apply(mv), fresh.apply(mv)) {
                    (Ok(wc), Ok(fc)) => {
                        prop_assert_eq!(wc, fc, "accepted {:?} priced differently", mv);
                        prop_assert_eq!(warm.clocks(), fresh.clocks());
                        if rng.gen_range(0u32..3) == 0 {
                            warm.undo();
                            fresh.undo();
                        } else {
                            warm.commit();
                            fresh.commit();
                        }
                    }
                    (Err(_), Err(_)) => {}
                    (w, f) => prop_assert!(
                        false,
                        "warm {:?} vs fresh {:?} disagreed on {:?}",
                        w,
                        f,
                        mv
                    ),
                }
            }
        }
    }
}

/// A 4-site, 80-host, 320-core grid — big enough to place 256 ranks, with
/// distinct inter-site RTTs so moved ranks change transfer-table rows.
fn soak_topology() -> Arc<Topology> {
    let mut b = TopologyBuilder::new();
    let sites: Vec<_> = (0..4).map(|i| b.add_site(format!("s{i}"))).collect();
    for (i, &s) in sites.iter().enumerate() {
        b.add_cluster(
            s,
            format!("c{i}"),
            "cpu",
            20,
            NodeSpec {
                cores: 4,
                ops_per_sec: 1.0e9 + i as f64 * 2.5e8,
                ..NodeSpec::default()
            },
        );
    }
    for i in 0..sites.len() {
        for j in (i + 1)..sites.len() {
            b.set_rtt(
                sites[i],
                sites[j],
                p2pmpi_simgrid::time::SimDuration::from_millis(5 + 4 * (i + j) as u64),
            );
        }
    }
    b.set_bandwidth(sites[0], sites[3], 1e9);
    Arc::new(b.build())
}

/// IS's per-iteration collective shape (allreduce + alltoall + balanced
/// alltoallv + compute), inlined here so the `p2pmpi-mpi` test suite can
/// soak the evaluator at IS scale without depending on `p2pmpi-nas`.  The
/// balanced alltoallv compresses to a pooled transfer table; the trailing
/// allgather keeps a non-ring segment downstream of every ring.
fn is_shaped_program<P: CollectiveProgram>(p: &mut P, iterations: u32) {
    let n = p.size();
    let keys: u64 = 1 << 18;
    let buckets: u64 = 1 << 10;
    for _ in 0..iterations {
        p.allreduce(buckets * 8);
        p.alltoall(8);
        p.alltoallv(move |src, _| {
            let share = keys / n as u64 + u64::from((src as u64) < keys % n as u64);
            (share / n as u64) * 4
        });
        p.compute(MemoryIntensity::MEMORY_BOUND, move |r| {
            (keys / n as u64 + u64::from((r as u64) < keys % n as u64)) as f64 * 50.0
        });
    }
    p.allgather(|_| 3 * 8);
}

/// Deterministic 256-rank soak: an IS-shaped schedule on an 80-host grid,
/// a fixed swap/migrate walk with undo sprinkled in, and a full `ModelComm`
/// replay after **every** accepted move.  This is the at-scale pin of the
/// tentpole contract — the pooled-table wavefront must match the oracle bit
/// for bit at the rank counts the search actually runs.
#[test]
fn is_shaped_soak_at_256_matches_oracle() {
    let topology = soak_topology();
    let n: u32 = 256;
    let mut b = ScheduleBuilder::new(n);
    is_shaped_program(&mut b, 3);
    let schedule = Arc::new(b.finish());
    let hosts = random_feasible_hosts(&topology, n, 0xC0FFEE);
    let capacity: Vec<u32> = topology.hosts().iter().map(|h| h.cores as u32).collect();
    let mut cost = PlacementCost::new(
        schedule,
        hosts,
        capacity,
        NetworkModel::new(topology.clone()),
        ComputeModel::new(topology.clone()),
    );
    assert_eq!(cost.clocks(), &cost.oracle_clocks()[..]);

    let mut rng = seeded(2008);
    let host_count = topology.host_count();
    let mut accepted = 0u32;
    for step in 0..24 {
        let mv = if rng.gen_range(0u32..2) == 0 {
            Move::Swap {
                a: rng.gen_range(0..n),
                b: rng.gen_range(0..n),
            }
        } else {
            Move::Migrate {
                rank: rng.gen_range(0..n),
                to: HostId(rng.gen_range(0..host_count)),
            }
        };
        let before_cost = cost.cost();
        let before_hosts = cost.hosts().to_vec();
        if cost.apply(mv).is_err() {
            assert_eq!(cost.cost(), before_cost);
            assert_eq!(cost.hosts(), &before_hosts[..]);
            continue;
        }
        accepted += 1;
        assert_eq!(
            cost.clocks(),
            &cost.oracle_clocks()[..],
            "soak step {step}: delta diverged from the oracle after {mv:?}"
        );
        if step % 3 == 0 {
            cost.undo();
            assert_eq!(cost.cost(), before_cost);
            assert_eq!(cost.hosts(), &before_hosts[..]);
            assert_eq!(cost.clocks(), &cost.oracle_clocks()[..]);
        } else {
            cost.commit();
        }
    }
    // Most migrates land on full hosts (320 cores hold 256 ranks), so a
    // third of the walk surviving is the realistic floor.
    assert!(accepted >= 8, "the walk barely moved ({accepted} accepted)");
}
