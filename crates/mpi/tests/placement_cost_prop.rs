//! Property test of the incremental placement evaluator: after any sequence
//! of swap/migrate moves (committed or undone) over any placement and any
//! collective program, `PlacementCost`'s cached per-rank clocks must equal a
//! from-scratch `ModelComm` replay of the same program **exactly** — the
//! delta-evaluation contract of `p2pmpi_mpi::model`.

use p2pmpi_mpi::model::{CollectiveProgram, Move, MoveError, PlacementCost, ScheduleBuilder};
use p2pmpi_simgrid::compute::ComputeModel;
use p2pmpi_simgrid::memory::MemoryIntensity;
use p2pmpi_simgrid::network::NetworkModel;
use p2pmpi_simgrid::rngutil::seeded;
use p2pmpi_simgrid::topology::{HostId, NodeSpec, Topology, TopologyBuilder};
use proptest::{prop_assert, prop_assert_eq, proptest};
use rand::Rng;
use std::sync::Arc;

/// Three sites with distinct RTTs (one on a slow 1 Gbps link, like
/// Bordeaux) and eight dual-core hosts, so random placements and moves mix
/// loopback, intra-site and cross-site messaging plus co-location.
fn topology() -> Arc<Topology> {
    let mut b = TopologyBuilder::new();
    let near = b.add_site("near");
    let mid = b.add_site("mid");
    let far = b.add_site("far");
    b.add_cluster(near, "n", "cpu", 4, NodeSpec::default());
    b.add_cluster(mid, "m", "cpu", 2, NodeSpec::default());
    b.add_cluster(
        far,
        "f",
        "cpu",
        2,
        NodeSpec {
            cores: 4,
            ops_per_sec: 1.5e9,
            ..NodeSpec::default()
        },
    );
    b.set_rtt(
        near,
        mid,
        p2pmpi_simgrid::time::SimDuration::from_millis(11),
    );
    b.set_rtt(
        near,
        far,
        p2pmpi_simgrid::time::SimDuration::from_millis(17),
    );
    b.set_rtt(mid, far, p2pmpi_simgrid::time::SimDuration::from_millis(17));
    b.set_bandwidth(near, far, 1e9);
    Arc::new(b.build())
}

/// A random collective program mixing every schedule shape the compiler
/// knows (compute, trees, rings, advance).
fn random_program<P: CollectiveProgram>(p: &mut P, program_seed: u64) {
    let mut rng = seeded(program_seed);
    let n = p.size();
    let steps = rng.gen_range(2usize..6);
    for _ in 0..steps {
        match rng.gen_range(0u32..8) {
            0 => {
                let scale = rng.gen_range(1u64..50) as f64;
                p.compute(MemoryIntensity::MEMORY_BOUND, |r| {
                    1e6 * scale * (r as f64 + 1.0)
                });
            }
            1 => p.bcast(rng.gen_range(0..n), rng.gen_range(1u64..5000)),
            2 => p.reduce(rng.gen_range(0..n), rng.gen_range(1u64..2000)),
            3 => p.allreduce(rng.gen_range(1u64..1000)),
            4 => p.alltoall(rng.gen_range(1u64..500)),
            5 => {
                let stride = rng.gen_range(0u64..37);
                p.alltoallv(move |src, dst| (src as u64 + dst as u64 * stride) % 91 * 4);
            }
            6 => p.allgather(|r| (r as u64 % 5) * 8 + 8),
            _ => p.barrier(),
        }
    }
}

/// Assigns `n` ranks to random hosts without exceeding any host's core
/// capacity (migrates need somewhere to go, so capacity-feasible starts
/// matter).
fn random_feasible_hosts(topology: &Topology, n: u32, seed: u64) -> Vec<HostId> {
    let mut rng = seeded(seed);
    let mut free: Vec<u32> = topology.hosts().iter().map(|h| h.cores as u32).collect();
    (0..n)
        .map(|_| loop {
            let h = rng.gen_range(0..free.len());
            if free[h] > 0 {
                free[h] -= 1;
                break HostId(h);
            }
        })
        .collect()
}

proptest! {
    #[test]
    fn delta_after_any_move_sequence_equals_full_replay(
        n in 2u32..17,
        placement_seed in 0u64..1_000_000,
        program_seed in 0u64..1_000_000,
        move_seed in 0u64..1_000_000,
    ) {
        let topology = topology();
        let mut b = ScheduleBuilder::new(n);
        random_program(&mut b, program_seed);
        let schedule = Arc::new(b.finish());
        let hosts = random_feasible_hosts(&topology, n, placement_seed);
        let capacity: Vec<u32> = topology.hosts().iter().map(|h| h.cores as u32).collect();
        let mut cost = PlacementCost::new(
            schedule,
            hosts,
            capacity,
            NetworkModel::new(topology.clone()),
            ComputeModel::new(topology.clone()),
        );

        // At rest the caches are a full replay by construction.
        prop_assert_eq!(cost.clocks(), &cost.oracle_clocks()[..]);

        let mut rng = seeded(move_seed);
        let host_count = topology.host_count();
        for _ in 0..12 {
            let mv = if rng.gen_range(0u32..2) == 0 {
                Move::Swap {
                    a: rng.gen_range(0..n),
                    b: rng.gen_range(0..n),
                }
            } else {
                // Deliberately unfiltered: some migrates violate capacity
                // and must be rejected without touching any state.
                Move::Migrate {
                    rank: rng.gen_range(0..n),
                    to: HostId(rng.gen_range(0..host_count)),
                }
            };
            let before_cost = cost.cost();
            let before_hosts = cost.hosts().to_vec();
            match cost.apply(mv) {
                Err(MoveError::CapacityExceeded { .. }) => {
                    // Rejection is mutation-free.
                    prop_assert_eq!(cost.cost(), before_cost);
                    prop_assert_eq!(cost.hosts(), &before_hosts[..]);
                    prop_assert_eq!(cost.clocks(), &cost.oracle_clocks()[..]);
                }
                Ok(new_cost) => {
                    // Delta-after-move equals the from-scratch replay,
                    // per rank, bit for bit.
                    let oracle = cost.oracle_clocks();
                    prop_assert_eq!(cost.clocks(), &oracle[..],
                        "delta clocks diverged from the oracle after {:?}", mv);
                    let oracle_max = oracle.iter().copied().max().unwrap();
                    prop_assert_eq!(
                        new_cost,
                        oracle_max.saturating_since(p2pmpi_simgrid::time::SimTime::ZERO)
                    );
                    if rng.gen_range(0u32..3) == 0 {
                        // Revert: the pre-move state must come back exactly.
                        cost.undo();
                        prop_assert_eq!(cost.cost(), before_cost);
                        prop_assert_eq!(cost.hosts(), &before_hosts[..]);
                        prop_assert_eq!(cost.clocks(), &cost.oracle_clocks()[..]);
                    } else {
                        cost.commit();
                    }
                }
            }
        }
        // The capacity invariant survived the walk.
        let mut used = vec![0u32; host_count];
        for &h in cost.hosts() {
            used[h.0] += 1;
        }
        for (h, &u) in used.iter().enumerate() {
            prop_assert!(u <= topology.host(HostId(h)).cores as u32);
        }
    }
}
