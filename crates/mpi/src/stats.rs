//! Communication statistics.

use p2pmpi_simgrid::time::SimDuration;

/// Counters accumulated by one process instance (and aggregated per job).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CommStats {
    /// Logical messages sent (replica fan-out copies count once).
    pub messages_sent: u64,
    /// Messages received and accepted.
    pub messages_received: u64,
    /// Payload bytes sent.
    pub bytes_sent: u64,
    /// Payload bytes received.
    pub bytes_received: u64,
    /// Abstract operations charged to the compute model.
    pub compute_ops: f64,
    /// Virtual time spent in compute sections.
    pub compute_time: SimDuration,
}

impl CommStats {
    /// Adds another instance's counters into this one.
    pub fn merge(&mut self, other: &CommStats) {
        self.messages_sent += other.messages_sent;
        self.messages_received += other.messages_received;
        self.bytes_sent += other.bytes_sent;
        self.bytes_received += other.bytes_received;
        self.compute_ops += other.compute_ops;
        self.compute_time += other.compute_time;
    }

    /// Total messages (sent + received).
    pub fn total_messages(&self) -> u64 {
        self.messages_sent + self.messages_received
    }

    /// Total bytes (sent + received).
    pub fn total_bytes(&self) -> u64 {
        self.bytes_sent + self.bytes_received
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates_everything() {
        let mut a = CommStats {
            messages_sent: 1,
            messages_received: 2,
            bytes_sent: 10,
            bytes_received: 20,
            compute_ops: 5.0,
            compute_time: SimDuration::from_millis(3),
        };
        let b = CommStats {
            messages_sent: 3,
            messages_received: 4,
            bytes_sent: 30,
            bytes_received: 40,
            compute_ops: 2.5,
            compute_time: SimDuration::from_millis(7),
        };
        a.merge(&b);
        assert_eq!(a.messages_sent, 4);
        assert_eq!(a.messages_received, 6);
        assert_eq!(a.total_messages(), 10);
        assert_eq!(a.total_bytes(), 100);
        assert_eq!(a.compute_ops, 7.5);
        assert_eq!(a.compute_time, SimDuration::from_millis(10));
    }

    #[test]
    fn default_is_zero() {
        let s = CommStats::default();
        assert_eq!(s.total_messages(), 0);
        assert_eq!(s.total_bytes(), 0);
        assert_eq!(s.compute_time, SimDuration::ZERO);
    }
}
