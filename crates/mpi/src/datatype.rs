//! Typed message buffers.
//!
//! P2P-MPI is an MPJ implementation: the API carries typed arrays, the wire
//! carries bytes.  [`Datatype`] gives the byte view used by the transport,
//! and [`Reducible`] adds the element-wise operations the reduction
//! collectives need.

/// A fixed-size element type that can cross the simulated wire.
pub trait Datatype: Copy + Send + 'static {
    /// Size of one element in bytes (what the cost model charges).
    const SIZE: usize;

    /// Serializes a slice of elements to bytes (little-endian).
    fn to_bytes(data: &[Self]) -> Vec<u8>;

    /// Deserializes bytes produced by [`Datatype::to_bytes`].
    fn from_bytes(bytes: &[u8]) -> Vec<Self>;
}

/// Reduction operators understood by `reduce`/`allreduce`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Element-wise sum.
    Sum,
    /// Element-wise maximum.
    Max,
    /// Element-wise minimum.
    Min,
}

/// Element types supporting the reduction operators.
pub trait Reducible: Datatype {
    /// `acc[i] = op(acc[i], other[i])` for every element.
    fn reduce_into(op: ReduceOp, acc: &mut [Self], other: &[Self]);
}

macro_rules! impl_datatype {
    ($t:ty, $size:expr) => {
        impl Datatype for $t {
            const SIZE: usize = $size;

            fn to_bytes(data: &[Self]) -> Vec<u8> {
                let mut out = Vec::with_capacity(data.len() * Self::SIZE);
                for v in data {
                    out.extend_from_slice(&v.to_le_bytes());
                }
                out
            }

            fn from_bytes(bytes: &[u8]) -> Vec<Self> {
                #[allow(clippy::modulo_one)] // SIZE is 1 for u8
                let aligned = bytes.len() % Self::SIZE == 0;
                assert!(
                    aligned,
                    "byte buffer length {} is not a multiple of element size {}",
                    bytes.len(),
                    Self::SIZE
                );
                bytes
                    .chunks_exact(Self::SIZE)
                    .map(|c| <$t>::from_le_bytes(c.try_into().expect("chunk size")))
                    .collect()
            }
        }
    };
}

impl_datatype!(u8, 1);
impl_datatype!(i32, 4);
impl_datatype!(u32, 4);
impl_datatype!(i64, 8);
impl_datatype!(u64, 8);
impl_datatype!(f64, 8);

macro_rules! impl_reducible_ord {
    ($t:ty) => {
        impl Reducible for $t {
            fn reduce_into(op: ReduceOp, acc: &mut [Self], other: &[Self]) {
                assert_eq!(acc.len(), other.len(), "reduction length mismatch");
                for (a, b) in acc.iter_mut().zip(other) {
                    *a = match op {
                        ReduceOp::Sum => a.wrapping_add(*b),
                        ReduceOp::Max => (*a).max(*b),
                        ReduceOp::Min => (*a).min(*b),
                    };
                }
            }
        }
    };
}

impl_reducible_ord!(i32);
impl_reducible_ord!(u32);
impl_reducible_ord!(i64);
impl_reducible_ord!(u64);

impl Reducible for u8 {
    fn reduce_into(op: ReduceOp, acc: &mut [Self], other: &[Self]) {
        assert_eq!(acc.len(), other.len(), "reduction length mismatch");
        for (a, b) in acc.iter_mut().zip(other) {
            *a = match op {
                ReduceOp::Sum => a.wrapping_add(*b),
                ReduceOp::Max => (*a).max(*b),
                ReduceOp::Min => (*a).min(*b),
            };
        }
    }
}

impl Reducible for f64 {
    fn reduce_into(op: ReduceOp, acc: &mut [Self], other: &[Self]) {
        assert_eq!(acc.len(), other.len(), "reduction length mismatch");
        for (a, b) in acc.iter_mut().zip(other) {
            *a = match op {
                ReduceOp::Sum => *a + *b,
                ReduceOp::Max => a.max(*b),
                ReduceOp::Min => a.min(*b),
            };
        }
    }
}

/// Wire size in bytes of a slice of `T`.
pub fn wire_size<T: Datatype>(data: &[T]) -> u64 {
    (data.len() * T::SIZE) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_types() {
        let xs: Vec<i32> = vec![-5, 0, 123456];
        assert_eq!(i32::from_bytes(&i32::to_bytes(&xs)), xs);
        let xs: Vec<u8> = vec![1, 2, 255];
        assert_eq!(u8::from_bytes(&u8::to_bytes(&xs)), xs);
        let xs: Vec<i64> = vec![i64::MIN, 7, i64::MAX];
        assert_eq!(i64::from_bytes(&i64::to_bytes(&xs)), xs);
        let xs: Vec<u64> = vec![0, u64::MAX];
        assert_eq!(u64::from_bytes(&u64::to_bytes(&xs)), xs);
        let xs: Vec<u32> = vec![0, 42, u32::MAX];
        assert_eq!(u32::from_bytes(&u32::to_bytes(&xs)), xs);
        let xs: Vec<f64> = vec![-1.5, 0.0, std::f64::consts::PI];
        assert_eq!(f64::from_bytes(&f64::to_bytes(&xs)), xs);
    }

    #[test]
    fn wire_size_counts_bytes() {
        assert_eq!(wire_size(&[0i32; 10]), 40);
        assert_eq!(wire_size(&[0f64; 3]), 24);
        assert_eq!(wire_size::<u8>(&[]), 0);
    }

    #[test]
    fn empty_round_trip() {
        let xs: Vec<f64> = vec![];
        assert_eq!(f64::from_bytes(&f64::to_bytes(&xs)), xs);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn misaligned_buffer_panics() {
        i32::from_bytes(&[1, 2, 3]);
    }

    #[test]
    fn reductions_per_op() {
        let mut a = vec![1i64, 5, -3];
        i64::reduce_into(ReduceOp::Sum, &mut a, &[2, -1, 4]);
        assert_eq!(a, vec![3, 4, 1]);
        let mut a = vec![1i64, 5, -3];
        i64::reduce_into(ReduceOp::Max, &mut a, &[2, -1, 4]);
        assert_eq!(a, vec![2, 5, 4]);
        let mut a = vec![1i64, 5, -3];
        i64::reduce_into(ReduceOp::Min, &mut a, &[2, -1, 4]);
        assert_eq!(a, vec![1, -1, -3]);
        let mut f = vec![1.5f64, 2.0];
        f64::reduce_into(ReduceOp::Sum, &mut f, &[0.5, -1.0]);
        assert_eq!(f, vec![2.0, 1.0]);
        let mut b = vec![250u8];
        u8::reduce_into(ReduceOp::Sum, &mut b, &[10]);
        assert_eq!(b, vec![4]); // wrapping, as documented for integer sums
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn reduce_length_mismatch_panics() {
        let mut a = vec![1i32];
        i32::reduce_into(ReduceOp::Sum, &mut a, &[1, 2]);
    }
}
