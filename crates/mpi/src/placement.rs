//! Process placement: which host runs which `(rank, replica)` instance.
//!
//! A [`Placement`] is the hand-over point between the co-allocation layer
//! (`p2pmpi-core`, which produces an [`Allocation`]) and the MPI runtime.
//! It can also be constructed directly for tests and micro-benchmarks.

use crate::error::Rank;
use p2pmpi_core::allocation::Allocation;
use p2pmpi_simgrid::topology::HostId;
use std::collections::HashMap;
use std::fmt;

/// One process instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProcSpec {
    /// Logical MPI rank.
    pub rank: Rank,
    /// Replica index (0 = primary copy).
    pub replica: u32,
    /// Host the instance runs on.
    pub host: HostId,
}

/// A complete placement of `n × r` process instances.
#[derive(Debug, Clone)]
pub struct Placement {
    /// Number of logical ranks.
    pub processes: u32,
    /// Replication degree.
    pub replication: u32,
    /// All instances; every `(rank, replica)` pair appears exactly once.
    pub procs: Vec<ProcSpec>,
}

/// Placement validation failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlacementError {
    /// Some `(rank, replica)` pair is missing or duplicated.
    IncompleteInstances,
    /// Two replicas of the same rank share a host.
    ReplicasShareHost {
        /// The rank whose copies collide.
        rank: Rank,
    },
}

impl fmt::Display for PlacementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlacementError::IncompleteInstances => {
                write!(
                    f,
                    "placement does not cover every (rank, replica) exactly once"
                )
            }
            PlacementError::ReplicasShareHost { rank } => {
                write!(f, "two replicas of rank {rank} share a host")
            }
        }
    }
}

impl std::error::Error for PlacementError {}

impl Placement {
    /// Converts a validated co-allocation into a placement.
    pub fn from_allocation(allocation: &Allocation) -> Placement {
        let mut procs = Vec::with_capacity(allocation.total_instances() as usize);
        for h in &allocation.hosts {
            for ra in &h.ranks {
                procs.push(ProcSpec {
                    rank: ra.rank,
                    replica: ra.replica,
                    host: h.host,
                });
            }
        }
        Placement {
            processes: allocation.processes,
            replication: allocation.replication,
            procs,
        }
    }

    /// All `n` ranks on one host (a "concentrate onto one node" extreme,
    /// handy for unit tests).
    pub fn co_located(n: u32, host: HostId) -> Placement {
        Placement {
            processes: n,
            replication: 1,
            procs: (0..n)
                .map(|rank| ProcSpec {
                    rank,
                    replica: 0,
                    host,
                })
                .collect(),
        }
    }

    /// One rank per host, in order (`n = hosts.len()`).
    pub fn one_per_host(hosts: &[HostId]) -> Placement {
        Placement {
            processes: hosts.len() as u32,
            replication: 1,
            procs: hosts
                .iter()
                .enumerate()
                .map(|(rank, &host)| ProcSpec {
                    rank: rank as Rank,
                    replica: 0,
                    host,
                })
                .collect(),
        }
    }

    /// `n` ranks dealt round-robin over `hosts`.
    pub fn round_robin(n: u32, hosts: &[HostId]) -> Placement {
        assert!(!hosts.is_empty(), "round_robin needs at least one host");
        Placement {
            processes: n,
            replication: 1,
            procs: (0..n)
                .map(|rank| ProcSpec {
                    rank,
                    replica: 0,
                    host: hosts[rank as usize % hosts.len()],
                })
                .collect(),
        }
    }

    /// `n` ranks with `r` replicas each, replica `k` of every rank living on
    /// `hosts[k]`-style rotation: replica copies are shifted by one host so
    /// that no two copies of a rank collide.  Requires `hosts.len() >= r`.
    pub fn replicated_round_robin(n: u32, r: u32, hosts: &[HostId]) -> Placement {
        assert!(
            hosts.len() >= r as usize,
            "need at least r distinct hosts to separate replicas"
        );
        let mut procs = Vec::with_capacity((n * r) as usize);
        for rank in 0..n {
            for replica in 0..r {
                let host = hosts[(rank as usize + replica as usize) % hosts.len()];
                procs.push(ProcSpec {
                    rank,
                    replica,
                    host,
                });
            }
        }
        Placement {
            processes: n,
            replication: r,
            procs,
        }
    }

    /// Total number of instances.
    pub fn total_instances(&self) -> usize {
        self.procs.len()
    }

    /// Dense index of an instance (used by the router's channel table).
    pub fn instance_index(&self, rank: Rank, replica: u32) -> usize {
        (rank * self.replication + replica) as usize
    }

    /// The host running `(rank, replica)`.
    pub fn host_of(&self, rank: Rank, replica: u32) -> Option<HostId> {
        self.procs
            .iter()
            .find(|p| p.rank == rank && p.replica == replica)
            .map(|p| p.host)
    }

    /// Number of instances co-resident on each host (drives the
    /// memory-contention model).
    pub fn residents_per_host(&self) -> HashMap<HostId, usize> {
        let mut m = HashMap::new();
        for p in &self.procs {
            *m.entry(p.host).or_insert(0) += 1;
        }
        m
    }

    /// Number of distinct hosts used.
    pub fn hosts_used(&self) -> usize {
        self.residents_per_host().len()
    }

    /// Checks structural invariants.
    pub fn validate(&self) -> Result<(), PlacementError> {
        let expected = self.processes as usize * self.replication as usize;
        if self.procs.len() != expected {
            return Err(PlacementError::IncompleteInstances);
        }
        let mut seen = vec![false; expected];
        for p in &self.procs {
            if p.rank >= self.processes || p.replica >= self.replication {
                return Err(PlacementError::IncompleteInstances);
            }
            let idx = self.instance_index(p.rank, p.replica);
            if seen[idx] {
                return Err(PlacementError::IncompleteInstances);
            }
            seen[idx] = true;
        }
        for rank in 0..self.processes {
            let mut hosts: Vec<HostId> = self
                .procs
                .iter()
                .filter(|p| p.rank == rank)
                .map(|p| p.host)
                .collect();
            hosts.sort_unstable();
            hosts.dedup();
            if hosts.len() != self.replication as usize {
                return Err(PlacementError::ReplicasShareHost { rank });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn co_located_and_one_per_host() {
        let p = Placement::co_located(4, HostId(7));
        assert_eq!(p.total_instances(), 4);
        assert_eq!(p.hosts_used(), 1);
        assert_eq!(p.residents_per_host()[&HostId(7)], 4);
        assert!(p.validate().is_ok());

        let hosts = vec![HostId(0), HostId(1), HostId(2)];
        let q = Placement::one_per_host(&hosts);
        assert_eq!(q.processes, 3);
        assert_eq!(q.hosts_used(), 3);
        assert_eq!(q.host_of(2, 0), Some(HostId(2)));
        assert!(q.validate().is_ok());
    }

    #[test]
    fn round_robin_wraps() {
        let hosts = vec![HostId(0), HostId(1)];
        let p = Placement::round_robin(5, &hosts);
        assert_eq!(p.host_of(0, 0), Some(HostId(0)));
        assert_eq!(p.host_of(1, 0), Some(HostId(1)));
        assert_eq!(p.host_of(4, 0), Some(HostId(0)));
        assert_eq!(p.residents_per_host()[&HostId(0)], 3);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn replicated_round_robin_separates_copies() {
        let hosts = vec![HostId(0), HostId(1), HostId(2)];
        let p = Placement::replicated_round_robin(3, 2, &hosts);
        assert_eq!(p.total_instances(), 6);
        assert!(p.validate().is_ok());
        for rank in 0..3 {
            assert_ne!(p.host_of(rank, 0), p.host_of(rank, 1));
        }
    }

    #[test]
    fn validation_catches_colocated_replicas() {
        let p = Placement {
            processes: 1,
            replication: 2,
            procs: vec![
                ProcSpec {
                    rank: 0,
                    replica: 0,
                    host: HostId(0),
                },
                ProcSpec {
                    rank: 0,
                    replica: 1,
                    host: HostId(0),
                },
            ],
        };
        assert_eq!(
            p.validate(),
            Err(PlacementError::ReplicasShareHost { rank: 0 })
        );
    }

    #[test]
    fn validation_catches_missing_and_duplicate_instances() {
        let mut p = Placement::co_located(3, HostId(0));
        p.procs.pop();
        assert_eq!(p.validate(), Err(PlacementError::IncompleteInstances));
        let mut q = Placement::co_located(2, HostId(0));
        q.procs[1].rank = 0;
        assert_eq!(q.validate(), Err(PlacementError::IncompleteInstances));
    }

    #[test]
    fn instance_index_is_dense() {
        let p = Placement::replicated_round_robin(3, 2, &[HostId(0), HostId(1)]);
        let mut seen = std::collections::HashSet::new();
        for spec in &p.procs {
            assert!(seen.insert(p.instance_index(spec.rank, spec.replica)));
        }
        assert_eq!(seen.len(), 6);
        assert!(seen.iter().all(|&i| i < 6));
    }

    #[test]
    #[should_panic(expected = "at least r distinct hosts")]
    fn replication_needs_enough_hosts() {
        Placement::replicated_round_robin(2, 3, &[HostId(0), HostId(1)]);
    }

    #[test]
    fn error_display() {
        assert!(PlacementError::IncompleteInstances
            .to_string()
            .contains("exactly once"));
        assert!(PlacementError::ReplicasShareHost { rank: 3 }
            .to_string()
            .contains("rank 3"));
    }
}
