//! LogGP-style analytical cost model of the collective operations — and the
//! incremental (delta) placement evaluator built on top of it.
//!
//! The executed runtime ([`crate::runtime::MpiRuntime::run`]) spawns one OS
//! thread per rank and lets the virtual-time cost of a collective *emerge*
//! from thousands of point-to-point messages.  That is faithful but caps
//! Figure 4 sweeps at a few hundred ranks.  This module predicts the same
//! virtual clocks *analytically*: one scalar clock per rank, advanced by
//! walking the exact message schedule of each collective (binomial
//! broadcast/reduce trees, the ring alltoall(v) schedule, linear
//! gather/scatter) under the LogGP cost algebra below — no threads, no
//! channels, no payload bytes.  A 2048-rank NAS-IS iteration that would need
//! 2048 threads and ~4 M channel messages becomes ~4 M scalar clock updates,
//! so sweeps scale to thousands of ranks in seconds.
//!
//! # The LogGP parameterisation
//!
//! LogGP (Alexandrov et al., after the LogP model of Culler et al.) describes
//! a network by:
//!
//! * **L** — the one-way wire latency between two hosts,
//! * **o** — the per-message CPU overhead paid by the software stack,
//! * **g** — the minimum gap between consecutive message injections,
//! * **G** — the gap per byte, i.e. the reciprocal bandwidth for long
//!   messages.
//!
//! The executed runtime's transfer rule (see `p2pmpi_simgrid::network`) is
//!
//! ```text
//! sender:   clock += o                      (software overhead, per message)
//! receiver: clock  = max(clock, sent_at + L + o + bytes·framing·8/bw)
//! ```
//!
//! which is exactly a LogGP cost with `L = rtt/2`, `o` the per-message
//! software overhead on either side, `g = o` (the sender can inject the next
//! message as soon as it has paid the overhead of the previous one) and
//! `G = framing · 8 / bandwidth` seconds per byte.  [`LogGpParams::between`]
//! exposes this mapping for a host pair.
//!
//! ## How Grid'5000 link specs map to L/o/g/G
//!
//! The `p2pmpi-grid5000` crate builds its topology from the paper's Table 1
//! and figure legends (`p2pmpi_grid5000::sites`), and those published specs
//! are precisely what instantiate the four parameters:
//!
//! * **L** comes from `RTT_TO_NANCY_MS` (halved): e.g. Nancy↔Sophia has an
//!   RTT of 17.167 ms, so `L ≈ 8.58 ms`; two hosts of the same site use the
//!   intra-site RTT of 0.087 ms (`L ≈ 43 µs`), and co-located processes the
//!   loopback RTT.
//! * **o** and **g** are the 35 µs per-message software overhead of the
//!   2008-era Java/TCP stack (`NetworkParams::per_message_overhead`), the
//!   same on every link.
//! * **G** comes from `wan_bandwidth_bps` and the NIC rate: 10 Gbps between
//!   most sites but 1 Gbps on any link touching Bordeaux and 1 Gbps at every
//!   NIC, times the 1.05 protocol-framing factor — so
//!   `G = 1.05 · 8 / min(link, NIC) ≈ 8.4 ns/byte` on a 1 Gbps bottleneck.
//!
//! # One schedule, three interpreters
//!
//! The collective schedules themselves — which rank messages which rank, in
//! what order, with how many bytes — depend only on the communicator size,
//! never on the placement.  They are therefore expressed once, as the
//! *default methods* of [`CollectiveProgram`], in terms of four placement-
//! independent primitives (`compute`, `advance`, `message`, `ring_exchange`).
//! Three interpreters consume them:
//!
//! * [`ModelComm`] executes the primitives immediately on per-rank scalar
//!   clocks (the Figure 4 modeled backend);
//! * [`ScheduleBuilder`] records them into a [`CompiledSchedule`], a flat,
//!   placement-independent representation of the whole kernel;
//! * [`PlacementCost`] evaluates a compiled schedule against a *mutable*
//!   host assignment, incrementally.
//!
//! Because all three share the default-method schedules, "the model", "the
//! recorded schedule" and "the delta evaluator" cannot drift apart: the
//! property tests pin `PlacementCost` to a fresh [`ModelComm`] replay
//! (`CompiledSchedule::drive`) per-rank-exactly.
//!
//! # The delta-evaluation contract
//!
//! [`PlacementCost`] exists to make *placement search* cheap: simulated
//! annealing proposes a move (swap two ranks' hosts, or migrate one rank to
//! an idle slot), asks for the new modeled makespan, and keeps or reverts
//! it.  A full model replay costs O(schedule) per proposal; the delta
//! evaluator costs O(affected ranks).
//!
//! **What is cached.**  Per segment of the compiled schedule (a compute
//! phase, a run of tree messages, one ring collective), `PlacementCost`
//! keeps the per-rank clocks at the segment boundary; per tree message, the
//! (`in_src`, `in_dst`, `out_dst`) clock triple of its last evaluation; and
//! a memo of LogGP transfer times keyed by (link class, byte count) — link
//! class meaning same-host / directed site pair, the only thing the
//! transfer cost depends on.  Ring segments keep no per-step clocks at all:
//! they share *pooled transfer tables*, one per distinct `Uniform`/`PerSrc`
//! byte structure among the schedule's rings.  A `Uniform` ring (same byte
//! count on every edge) collapses to one loopback scalar plus a
//! *site×site* matrix (`site[src_site · sites + dst_site]`) keyed by static
//! topology data only — O(sites²) bytes and **move-invariant**.  A
//! `PerSrc` ring keeps each source rank's transfer nanoseconds to a
//! co-resident (`tsame[src]`) and to a host at every destination site
//! (`tsite[src · sites + site]`) — O(ranks · sites) bytes, independent of
//! the step count.
//!
//! **What a move invalidates.**  A move changes (a) the transfer cost of
//! every message whose *endpoint rank* moved, and (b) the compute cost of
//! every rank whose host or whose host's *resident count* changed (a swap
//! preserves all resident counts; a migrate changes two hosts').  The delta
//! pass walks the schedule visiting only operations whose inputs changed:
//! a per-rank sorted index of tree messages seeds a worklist with the moved
//! ranks' messages, and dirtiness propagates forward — a rank whose
//! recomputed clock *re-matches* the cached trajectory leaves the dirty set
//! immediately (the `max()` in the receive rule absorbs most perturbations),
//! which is what bounds the affected set in practice.  A moved rank whose
//! *site* changed additionally rewrites its `tsite` row in every pooled
//! `PerSrc` table (journaled as `RingRow` entries); `tsame` is
//! host-independent and `Uniform` tables are site-keyed, so neither ever
//! changes.  A ring segment is then re-run as a two-row integer
//! *wavefront* over the tables — `C[d] = max(C'[d], C'[src] + t) + o` per
//! step, pure u64 nanosecond arithmetic, no float math and no hashing — and
//! only the exit clocks that differ from the segment boundary are journaled
//! and carried forward as the dirty frontier.  Every cache mutation is
//! journaled, so [`PlacementCost::undo`] restores the pre-move state
//! exactly and [`PlacementCost::commit`] is O(1).
//!
//! **Exactness.**  Delta-after-move equals a from-scratch replay bit for
//! bit, per rank — pinned by `crates/mpi/tests/placement_cost_prop.rs` over
//! random schedules, placements and move sequences, with
//! [`PlacementCost::oracle_clocks`] (a fresh `ModelComm` replay) as the
//! oracle.  The wavefront is exact because `SimTime` is a plain u64
//! nanosecond counter and the table entries are the very
//! `NetworkModel::transfer_time` values the replay computes; a ring's cost
//! is a max-plus product of n−1 banded matrices, so a single move perturbs
//! O(n) of its edges and *every* exit clock can depend on them — which is
//! why the wavefront re-derives all n−1 steps instead of chasing a sparse
//! frontier, and why it wins: ~3 ns per receive against the replay's float
//! transfer math and stats accounting.  A capacity-violating migrate is
//! rejected without touching any state.
//!
//! **Memory.**  The caches are O(schedule): trees cost three clocks per
//! message; rings cost O(ranks · sites) for the pooled tables plus two
//! O(ranks) scratch rows, shared across *all* ring segments with the same
//! byte structure ([`PlacementCost::ring_cache_bytes`] reports the total).
//! IS at 1024 ranks holds a few tables of ~64 KB — versus the ≈168 MB of
//! per-(step, rank) clock rows this design replaced — so IS and other
//! alltoall-heavy kernels stay searchable at 1024+ ranks.
//!
//! # The cross-job warm-reuse contract
//!
//! An online placement searcher (the day sweep's `searched` strategy) keeps
//! one warm `PlacementCost` per *kernel shape* — (program, rank count) —
//! across arrivals, because the job mix repeats a handful of shapes and the
//! grid state drifts by only a few occupy/release events between them.
//! [`PlacementCost::rebase`] is the resync point, and its invalidation
//! rules are deliberately narrow:
//!
//! * **Host diffs** are replayed as one wholesale multi-rank move: every
//!   rank whose host differs re-derives exactly what a migrate would
//!   (messages touching it, compute on touched hosts, `PerSrc` ring rows on
//!   site changes), through the same delta pass ordinary moves use.
//! * **Capacity changes invalidate nothing.**  The compute model's
//!   contention term keys on `residents` — ranks of *this* schedule — so
//!   other jobs occupying or releasing slots shifts only where future moves
//!   may go, never any cached clock.  The new capacities take effect
//!   immediately for subsequent `apply` feasibility checks.
//! * **Everything topology-keyed survives forever**: the (link class,
//!   bytes) transfer memo, `Uniform` ring tables, site representatives.
//!
//! `rebase` has commit semantics (the undo journal is cleared; no move can
//! be undone across it) and is exact: a rebased warm evaluator is
//! bit-identical to a fresh [`PlacementCost::new`] over the same arguments,
//! pinned by proptest over random occupy/release interleavings in
//! `tests/placement_cost_prop.rs`.  That exactness is what lets the online
//! search run warm by default and prove itself against a cold rebuild only
//! in tests and `perf_report`.
//!
//! # Fidelity
//!
//! [`ModelComm`] replays the *identical* schedule and clock arithmetic the
//! executed collectives use (same tree shapes, same per-step send order, the
//! same `SimDuration::from_secs_f64` roundings via
//! `NetworkModel::transfer_time`), so for a fixed sequence of collectives
//! over a fixed placement the modeled per-rank clocks are **equal** to the
//! executed ones — the property test in `tests/model_agreement.rs` pins this
//! for every collective at up to 16 ranks over random placements.  Modeled
//! *kernels* (e.g. `p2pmpi-nas`'s `is_model`) may still diverge slightly
//! where message sizes are data-dependent and the model substitutes a
//! balanced approximation; `perf_report` measures and bounds that divergence.
//!
//! # Choosing a backend
//!
//! [`CollectiveBackend`] selects between the two execution styles;
//! [`crate::runtime::MpiRuntime::with_backend`] records the choice on the
//! runtime and [`crate::runtime::MpiRuntime::model_comm`] builds a
//! [`ModelComm`] sharing the runtime's network and compute models, so the
//! experiment layer can flip a whole sweep from executed to modeled without
//! touching the cost parameters.

use crate::error::Rank;
use crate::placement::{Placement, ProcSpec};
use crate::stats::CommStats;
use p2pmpi_simgrid::compute::ComputeModel;
use p2pmpi_simgrid::memory::MemoryIntensity;
use p2pmpi_simgrid::network::NetworkModel;
use p2pmpi_simgrid::time::{SimDuration, SimTime};
use p2pmpi_simgrid::topology::HostId;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::fmt;
use std::sync::Arc;

/// How a job's collectives are costed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CollectiveBackend {
    /// One OS thread per rank, real message passing over channels; the cost
    /// emerges from the point-to-point layer (today's default path).
    #[default]
    Executed,
    /// Analytical LogGP-style prediction on per-rank scalar clocks; no
    /// threads, scales to thousands of ranks.
    Modeled,
}

/// The LogGP parameters of one (src, dst) host pair, derived from the
/// network model (see the module docs for the mapping).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogGpParams {
    /// `L`: one-way wire latency.
    pub latency: SimDuration,
    /// `o`: per-message software overhead (sender side; the receive path
    /// pays the same once more inside the transfer time).
    pub overhead: SimDuration,
    /// `g`: minimum gap between consecutive message injections (equals `o`
    /// under this runtime's cost rule).
    pub gap: SimDuration,
    /// `G`: seconds per payload byte (framing included).
    pub secs_per_byte: f64,
}

impl LogGpParams {
    /// Derives the parameters for messages from `src` to `dst`.
    pub fn between(network: &NetworkModel, src: HostId, dst: HostId) -> LogGpParams {
        let params = network.params();
        let topology = network.topology();
        let overhead = params.per_message_overhead;
        LogGpParams {
            latency: topology.latency(src, dst),
            overhead,
            gap: overhead,
            secs_per_byte: params.framing_factor * 8.0 / topology.bandwidth_bps(src, dst),
        }
    }
}

/// A program of collective operations, expressed placement-independently.
///
/// The default methods carry the *exact* collective schedules the executed
/// runtime uses (binomial broadcast/reduce trees, linear gather/scatter, the
/// ring alltoall(v)); implementors supply only the four primitives.  The
/// per-rank closures (`ops_of`, `bytes_of`, `bytes`) must be pure functions
/// of their rank arguments: interpreters may evaluate them in any order and
/// any number of times.
pub trait CollectiveProgram {
    /// Number of ranks.
    fn size(&self) -> u32;

    /// Charges a compute section to every rank; `ops_of(rank)` gives the
    /// abstract operation count of each rank's share.
    fn compute<F: FnMut(Rank) -> f64>(&mut self, intensity: MemoryIntensity, ops_of: F);

    /// Advances every rank's clock by `d` (I/O or set-up phases).
    fn advance(&mut self, d: SimDuration);

    /// One point-to-point message: the sender pays `o`, the receiver's clock
    /// rises to the arrival time (mirrors `Comm::send`/`Comm::accept`).
    fn message(&mut self, src: Rank, dst: Rank, bytes: u64);

    /// The full ring exchange of `Comm::alltoallv`: at step `s` every rank
    /// stamps a send to rank `r+s`, then blocks receiving from rank `r-s`;
    /// all sends of a step are stamped against the pre-step clocks.
    /// `bytes(src, dst)` is the block `src` sends to `dst`.
    fn ring_exchange<F: FnMut(Rank, Rank) -> u64>(&mut self, bytes: F);

    /// Binomial-tree broadcast of `bytes` from `root` (mirrors
    /// [`crate::Comm::bcast`]).
    fn bcast(&mut self, root: Rank, bytes: u64) {
        let size = self.size() as usize;
        assert!((root as usize) < size, "root {root} outside 0..{size}");
        if size <= 1 {
            return;
        }
        // Process ranks in increasing *relative* order: a rank's parent has a
        // smaller relative index, so its (receive, forward...) program has
        // already run and this rank's clock already reflects the arrival.
        for rel in 0..size {
            let me = (rel + root as usize) % size;
            // Forward to children in the executed send order: masks descend
            // from just below this rank's receive mask (or from the top for
            // the root).
            let mut mask: usize = 1;
            while mask < size && rel & mask == 0 {
                mask <<= 1;
            }
            mask >>= 1;
            while mask > 0 {
                if rel + mask < size {
                    let child = (rel + mask + root as usize) % size;
                    self.message(me as Rank, child as Rank, bytes);
                }
                mask >>= 1;
            }
        }
    }

    /// Binomial-tree reduction of `bytes` onto `root` (mirrors
    /// [`crate::Comm::reduce`]; the element-wise combine is free, as in the
    /// executed path).
    fn reduce(&mut self, root: Rank, bytes: u64) {
        let size = self.size() as usize;
        assert!((root as usize) < size, "root {root} outside 0..{size}");
        if size <= 1 {
            return;
        }
        // Children have larger relative indices: process them first so each
        // rank's clock includes every child contribution before it forwards
        // to its own parent.
        for rel in (1..size).rev() {
            let me = (rel + root as usize) % size;
            let parent_rel = rel & (rel - 1); // clear the lowest set bit
            let parent = (parent_rel + root as usize) % size;
            self.message(me as Rank, parent as Rank, bytes);
        }
    }

    /// Reduce-to-0 followed by broadcast (mirrors
    /// [`crate::Comm::allreduce`]).
    fn allreduce(&mut self, bytes: u64) {
        self.reduce(0, bytes);
        self.bcast(0, bytes);
    }

    /// Empty allreduce (mirrors [`crate::Comm::barrier`]: one `u8`).
    fn barrier(&mut self) {
        self.allreduce(1);
    }

    /// Linear gather at `root`; `bytes_of(rank)` is each rank's contribution
    /// (mirrors [`crate::Comm::gather`]).
    fn gather<F: FnMut(Rank) -> u64>(&mut self, root: Rank, mut bytes_of: F) {
        let size = self.size();
        assert!(root < size, "root {root} outside 0..{size}");
        for src in 0..size {
            if src != root {
                self.message(src, root, bytes_of(src));
            }
        }
    }

    /// Gather at 0 then broadcast of the concatenation (mirrors
    /// [`crate::Comm::allgather`]).
    fn allgather<F: FnMut(Rank) -> u64>(&mut self, mut bytes_of: F) {
        let total: u64 = (0..self.size()).map(&mut bytes_of).sum();
        self.gather(0, &mut bytes_of);
        self.bcast(0, total);
    }

    /// Linear scatter of `block_bytes` per rank from `root` (mirrors
    /// [`crate::Comm::scatter`]).
    fn scatter(&mut self, root: Rank, block_bytes: u64) {
        let size = self.size();
        assert!(root < size, "root {root} outside 0..{size}");
        for dst in 0..size {
            if dst != root {
                self.message(root, dst, block_bytes);
            }
        }
    }

    /// Ring alltoall of equal `block_bytes` blocks (mirrors
    /// [`crate::Comm::alltoall`]).
    fn alltoall(&mut self, block_bytes: u64) {
        self.alltoallv(move |_, _| block_bytes);
    }

    /// Ring alltoallv; `bytes(src, dst)` is the block `src` sends to `dst`
    /// (mirrors [`crate::Comm::alltoallv`]).
    fn alltoallv<F: FnMut(Rank, Rank) -> u64>(&mut self, bytes: F) {
        self.ring_exchange(bytes);
    }
}

/// Analytical stand-in for a whole communicator: one virtual clock per rank,
/// advanced by the same schedules and cost rules as the executed collectives.
///
/// The collectives come from the [`CollectiveProgram`] trait (bring it into
/// scope to call them); methods mirror [`crate::Comm`]'s but take *byte
/// counts* instead of data (the model never touches payloads).  Per-rank
/// quantities (gather contributions, alltoallv block sizes, compute work)
/// are supplied as closures over the rank index.
pub struct ModelComm {
    hosts: Vec<HostId>,
    residents: Vec<usize>,
    clocks: Vec<SimTime>,
    network: NetworkModel,
    compute: ComputeModel,
    stats: CommStats,
    /// Scratch: per-rank send timestamps within one ring step.
    sent_at: Vec<SimTime>,
}

impl ModelComm {
    /// Builds a model communicator for `placement` over the given cost
    /// models.
    ///
    /// # Panics
    ///
    /// Panics if the placement is invalid or uses replication (replicas only
    /// matter under failure injection, which the analytical model does not
    /// simulate).
    pub fn new(placement: &Placement, network: NetworkModel, compute: ComputeModel) -> ModelComm {
        placement
            .validate()
            .expect("cannot model an invalid placement");
        assert_eq!(
            placement.replication, 1,
            "the analytical model supports unreplicated placements only"
        );
        let n = placement.processes as usize;
        let mut hosts = vec![HostId(0); n];
        for spec in &placement.procs {
            hosts[spec.rank as usize] = spec.host;
        }
        let residents_per_host = placement.residents_per_host();
        let residents = hosts
            .iter()
            .map(|h| residents_per_host[h])
            .collect::<Vec<_>>();
        ModelComm {
            hosts,
            residents,
            clocks: vec![SimTime::ZERO; n],
            network,
            compute,
            stats: CommStats::default(),
            sent_at: vec![SimTime::ZERO; n],
        }
    }

    /// Number of ranks.
    pub fn size(&self) -> u32 {
        self.clocks.len() as u32
    }

    /// The modeled clock of one rank.
    pub fn clock(&self, rank: Rank) -> SimTime {
        self.clocks[rank as usize]
    }

    /// All per-rank clocks.
    pub fn clocks(&self) -> &[SimTime] {
        &self.clocks
    }

    /// The job makespan so far: the largest per-rank clock.
    pub fn makespan(&self) -> SimDuration {
        self.clocks
            .iter()
            .copied()
            .max()
            .unwrap_or(SimTime::ZERO)
            .saturating_since(SimTime::ZERO)
    }

    /// Aggregate modeled traffic and compute counters (what the executed
    /// job's [`CommStats`] would sum to).
    pub fn stats(&self) -> &CommStats {
        &self.stats
    }
}

impl CollectiveProgram for ModelComm {
    fn size(&self) -> u32 {
        self.clocks.len() as u32
    }

    fn compute<F: FnMut(Rank) -> f64>(&mut self, intensity: MemoryIntensity, mut ops_of: F) {
        for rank in 0..self.clocks.len() {
            let ops = ops_of(rank as Rank);
            let t =
                self.compute
                    .compute_time(self.hosts[rank], ops, intensity, self.residents[rank]);
            self.clocks[rank] += t;
            self.stats.compute_ops += ops;
            self.stats.compute_time += t;
        }
    }

    fn advance(&mut self, d: SimDuration) {
        for c in &mut self.clocks {
            *c += d;
        }
    }

    #[inline]
    fn message(&mut self, src: Rank, dst: Rank, bytes: u64) {
        let (src, dst) = (src as usize, dst as usize);
        let overhead = self.network.params().per_message_overhead;
        self.clocks[src] += overhead;
        let transfer = self
            .network
            .transfer_time(self.hosts[src], self.hosts[dst], bytes);
        let arrival = self.clocks[src] + transfer;
        self.clocks[dst] = self.clocks[dst].max(arrival);
        self.stats.messages_sent += 1;
        self.stats.messages_received += 1;
        self.stats.bytes_sent += bytes;
        self.stats.bytes_received += bytes;
    }

    fn ring_exchange<F: FnMut(Rank, Rank) -> u64>(&mut self, mut bytes: F) {
        let size = self.clocks.len();
        if size <= 1 {
            return;
        }
        let overhead = self.network.params().per_message_overhead;
        // Ring schedule: at step s every rank sends to rank+s and then blocks
        // receiving from rank-s.  Two phases per step: all sends are stamped
        // against the pre-step clocks, then every receive takes the max.
        for step in 1..size {
            for (rank, sent) in self.sent_at.iter_mut().enumerate() {
                self.clocks[rank] += overhead;
                *sent = self.clocks[rank];
            }
            for rank in 0..size {
                let src = (rank + size - step) % size;
                let b = bytes(src as Rank, rank as Rank);
                let transfer = self
                    .network
                    .transfer_time(self.hosts[src], self.hosts[rank], b);
                let arrival = self.sent_at[src] + transfer;
                self.clocks[rank] = self.clocks[rank].max(arrival);
                // Each (src → rank) block counts once on each side, as the
                // executed path does.
                self.stats.messages_sent += 1;
                self.stats.messages_received += 1;
                self.stats.bytes_sent += b;
                self.stats.bytes_received += b;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Compiled schedules
// ---------------------------------------------------------------------------

/// One tree message of a compiled schedule.
#[derive(Debug, Clone, Copy)]
struct MsgRec {
    src: u32,
    dst: u32,
    bytes: u64,
}

/// Byte counts of one ring collective, compressed by structure: NAS
/// alltoalls are uniform, IS's balanced alltoallv depends only on the
/// source rank; the general matrix is kept as the fallback.  Equality is
/// what pools ring transfer tables across segments (see [`PlacementCost`]).
#[derive(Debug, Clone, PartialEq)]
enum RingBytes {
    Uniform(u64),
    PerSrc(Box<[u64]>),
    PerPair(Box<[u64]>),
}

impl RingBytes {
    #[inline]
    fn get(&self, n: usize, src: usize, dst: usize) -> u64 {
        match self {
            RingBytes::Uniform(b) => *b,
            RingBytes::PerSrc(rows) => rows[src],
            RingBytes::PerPair(m) => m[src * n + dst],
        }
    }
}

/// One segment of a compiled schedule.
#[derive(Debug, Clone)]
enum Segment {
    /// A compute phase: per-rank abstract operation counts.
    Compute {
        intensity: MemoryIntensity,
        ops: Box<[f64]>,
    },
    /// A run of sequential tree messages (adjacent trees are merged);
    /// `by_rank[r]` lists the indices of the messages touching rank `r`,
    /// ascending — the worklist seed of the delta pass.
    Msgs {
        msgs: Box<[MsgRec]>,
        by_rank: Box<[Box<[u32]>]>,
    },
    /// One full ring exchange (n−1 steps).
    Ring { bytes: RingBytes },
    /// A uniform clock advance.
    Advance { d: SimDuration },
}

/// A placement-independent, flat representation of a whole kernel's
/// collective program, recorded by [`ScheduleBuilder`] and evaluated —
/// incrementally — by [`PlacementCost`].
#[derive(Debug, Clone)]
pub struct CompiledSchedule {
    size: u32,
    segments: Vec<Segment>,
}

impl CompiledSchedule {
    /// Number of ranks the schedule was compiled for.
    pub fn size(&self) -> u32 {
        self.size
    }

    /// Number of compiled segments (compute phases, merged tree runs,
    /// rings).
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// The length of a full replay — per-rank compute terms, tree
    /// messages, per-step ring receives and advance terms (the same units
    /// [`PlacementCost::last_delta_ops`] counts), for reporting.
    pub fn op_count(&self) -> usize {
        let n = self.size as usize;
        self.segments
            .iter()
            .map(|s| match s {
                Segment::Compute { ops, .. } => ops.len(),
                Segment::Msgs { msgs, .. } => msgs.len(),
                Segment::Ring { .. } => n.saturating_sub(1) * n,
                Segment::Advance { .. } => n,
            })
            .sum()
    }

    /// Replays the recorded primitive sequence on any other interpreter —
    /// driving a fresh [`ModelComm`] with this is exactly a full model
    /// replay of the original program (the oracle of the delta evaluator).
    pub fn drive<P: CollectiveProgram>(&self, p: &mut P) {
        assert_eq!(p.size(), self.size, "schedule compiled for another size");
        let n = self.size as usize;
        for seg in &self.segments {
            match seg {
                Segment::Compute { intensity, ops } => {
                    p.compute(*intensity, |r| ops[r as usize]);
                }
                Segment::Msgs { msgs, .. } => {
                    for m in msgs.iter() {
                        p.message(m.src, m.dst, m.bytes);
                    }
                }
                Segment::Ring { bytes } => {
                    p.ring_exchange(|s, d| bytes.get(n, s as usize, d as usize));
                }
                Segment::Advance { d } => p.advance(*d),
            }
        }
    }
}

/// Records a [`CollectiveProgram`] into a [`CompiledSchedule`].
///
/// Run the kernel's program against a builder (`p2pmpi-nas` exposes
/// `ep_schedule`/`is_schedule` doing exactly that), then [`finish`] it.
///
/// [`finish`]: ScheduleBuilder::finish
pub struct ScheduleBuilder {
    size: u32,
    segments: Vec<Segment>,
    /// Pending tree messages of the segment being built (adjacent trees
    /// merge into one segment).
    open_msgs: Vec<MsgRec>,
}

impl ScheduleBuilder {
    /// Starts an empty schedule for `size` ranks.
    pub fn new(size: u32) -> ScheduleBuilder {
        assert!(size >= 1, "a schedule needs at least one rank");
        ScheduleBuilder {
            size,
            segments: Vec::new(),
            open_msgs: Vec::new(),
        }
    }

    fn close_msgs(&mut self) {
        if self.open_msgs.is_empty() {
            return;
        }
        let msgs: Box<[MsgRec]> = std::mem::take(&mut self.open_msgs).into_boxed_slice();
        let mut by_rank: Vec<Vec<u32>> = vec![Vec::new(); self.size as usize];
        for (k, m) in msgs.iter().enumerate() {
            by_rank[m.src as usize].push(k as u32);
            if m.dst != m.src {
                by_rank[m.dst as usize].push(k as u32);
            }
        }
        let by_rank: Box<[Box<[u32]>]> =
            by_rank.into_iter().map(|v| v.into_boxed_slice()).collect();
        self.segments.push(Segment::Msgs { msgs, by_rank });
    }

    /// Finalises the recording.
    pub fn finish(mut self) -> CompiledSchedule {
        self.close_msgs();
        CompiledSchedule {
            size: self.size,
            segments: self.segments,
        }
    }
}

impl CollectiveProgram for ScheduleBuilder {
    fn size(&self) -> u32 {
        self.size
    }

    fn compute<F: FnMut(Rank) -> f64>(&mut self, intensity: MemoryIntensity, mut ops_of: F) {
        self.close_msgs();
        let ops: Box<[f64]> = (0..self.size).map(&mut ops_of).collect();
        self.segments.push(Segment::Compute { intensity, ops });
    }

    fn advance(&mut self, d: SimDuration) {
        self.close_msgs();
        self.segments.push(Segment::Advance { d });
    }

    fn message(&mut self, src: Rank, dst: Rank, bytes: u64) {
        self.open_msgs.push(MsgRec { src, dst, bytes });
    }

    fn ring_exchange<F: FnMut(Rank, Rank) -> u64>(&mut self, mut bytes: F) {
        let n = self.size as usize;
        if n <= 1 {
            return;
        }
        self.close_msgs();
        let mut matrix = vec![0u64; n * n];
        for src in 0..n {
            for dst in 0..n {
                matrix[src * n + dst] = bytes(src as Rank, dst as Rank);
            }
        }
        // The ring's steps run 1..n — a rank never exchanges with itself —
        // so the diagonal is ignored when deciding the compressed form
        // (transpose-style alltoallvs send 0 bytes to self but a constant
        // block everywhere else, and must still compress).  A compressed
        // form answers the (never-costed) diagonal query with the
        // off-diagonal value.
        let mut rows: Vec<u64> = Vec::with_capacity(n);
        let per_src_constant = (0..n).all(|src| {
            let row = &matrix[src * n..(src + 1) * n];
            let first = row[if src == 0 { 1 } else { 0 }];
            rows.push(first);
            row.iter()
                .enumerate()
                .all(|(dst, &b)| dst == src || b == first)
        });
        let bytes = if per_src_constant {
            if rows.iter().all(|&b| b == rows[0]) {
                RingBytes::Uniform(rows[0])
            } else {
                RingBytes::PerSrc(rows.into_boxed_slice())
            }
        } else {
            RingBytes::PerPair(matrix.into_boxed_slice())
        };
        self.segments.push(Segment::Ring { bytes });
    }
}

// ---------------------------------------------------------------------------
// The incremental placement evaluator
// ---------------------------------------------------------------------------

/// A candidate move of the placement search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Move {
    /// Exchange the hosts of two ranks (resident counts are preserved, so
    /// only the two ranks' own compute and message costs change).
    Swap {
        /// First rank.
        a: Rank,
        /// Second rank.
        b: Rank,
    },
    /// Move one rank to another host (requires an idle slot there; changes
    /// the resident count — and thus every co-resident's compute cost — on
    /// both hosts).
    Migrate {
        /// The rank to move.
        rank: Rank,
        /// Destination host.
        to: HostId,
    },
}

/// Why a move was rejected (the evaluator's state is untouched).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MoveError {
    /// The destination host has no idle slot.
    CapacityExceeded {
        /// The full host.
        host: HostId,
        /// Its capacity (slots).
        capacity: u32,
    },
}

impl fmt::Display for MoveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MoveError::CapacityExceeded { host, capacity } => {
                write!(f, "{host} is full ({capacity} slots)")
            }
        }
    }
}

impl std::error::Error for MoveError {}

/// Cached clock triple of one tree message.
#[derive(Debug, Clone, Copy)]
struct MsgCache {
    in_src: SimTime,
    in_dst: SimTime,
    out_dst: SimTime,
}

/// Per-segment delta caches (shapes parallel [`Segment`]).
enum SegCache {
    Plain,
    Msgs {
        msgs: Vec<MsgCache>,
        queued_epoch: Vec<u32>,
    },
    Ring {
        /// Index of the segment's pooled [`RingTable`], or `None` for a
        /// `PerPair` ring, whose wavefront falls back to the transfer memo.
        table: Option<u32>,
    },
}

/// Pooled transfer table of the ring wavefront: one per distinct
/// `Uniform`/`PerSrc` byte structure among the schedule's ring segments.
/// Entries are `NetworkModel::transfer_time` values in nanoseconds — the
/// transfer cost depends only on same-host-ness / the directed site pair
/// and the byte count.
enum RingTable {
    /// A `Uniform` ring sends the same byte count on every edge, so the
    /// whole table collapses to one scalar plus a site×site matrix — both
    /// keyed by static topology data only.  **No move ever invalidates a
    /// `Uniform` table**: `refresh_ring_rows` skips it and the undo journal
    /// never records a row for it.
    Uniform {
        /// Same-host transfer (host-independent loopback cost).
        tsame: u64,
        /// Directed site-pair transfer (`site[src_site * site_count +
        /// dst_site]`).  The diagonal holds the distinct-host intra-site
        /// cost; same-host pairs are patched with `tsame` by the colo list.
        site: Box<[u64]>,
    },
    /// A `PerSrc` ring sends a source-rank-dependent byte count, so the
    /// table keeps per-rank rows that must be re-derived when a rank
    /// changes site.
    PerSrc {
        /// Same-host transfer per source rank (`tsame[src]`).  Loopback
        /// cost is host-independent, so a move never invalidates this half.
        tsame: Box<[u64]>,
        /// Transfer from each source rank's current host to a host at each
        /// destination site (`tsite[src * site_count + site]`).  A moved
        /// rank's row changes only when its *site* changes.
        tsite: Box<[u64]>,
    },
}

/// One journaled cache mutation (reverted in reverse order by `undo`).
enum UndoEntry {
    Boundary {
        seg: u32,
        rank: u32,
        old: SimTime,
    },
    Msg {
        seg: u32,
        idx: u32,
        old: MsgCache,
    },
    RingRow {
        table: u32,
        rank: u32,
        old: Box<[u64]>,
    },
}

/// The in-flight move awaiting `commit`/`undo`.
struct PendingMove {
    mv: Move,
    /// The source host of a migrate (unused for swaps).
    old_host: HostId,
    /// True when the move changed nothing (same-host swap etc.).
    noop: bool,
    old_makespan: SimDuration,
    old_clock_mean: f64,
}

/// Incremental evaluator of one compiled schedule over a mutable host
/// assignment — the hot path of the placement search.  See the module docs
/// for the delta-evaluation contract (what is cached, what a move
/// invalidates, the exactness guarantee).
///
/// The evaluation protocol is `apply` → (`commit` | `undo`): `apply`
/// performs the move *and* returns the new modeled makespan; `commit` keeps
/// it (O(1)); `undo` restores every cache and the host assignment exactly.
pub struct PlacementCost {
    schedule: Arc<CompiledSchedule>,
    network: NetworkModel,
    compute: ComputeModel,
    overhead: SimDuration,
    site_count: usize,
    /// Host of each rank.
    hosts: Vec<HostId>,
    /// Resident ranks per host id (drives the memory-contention model).
    residents: Vec<u32>,
    /// Slot capacity per host id.
    capacity: Vec<u32>,
    /// Ranks currently resident on each host id.
    ranks_on_host: Vec<Vec<u32>>,
    /// Per-rank clocks at each segment boundary.
    boundary: Vec<Vec<SimTime>>,
    /// All-zero segment entry of the first segment.
    entry: Vec<SimTime>,
    caches: Vec<SegCache>,
    makespan: SimDuration,
    /// Mean final clock in seconds (see [`PlacementCost::mean_clock_secs`]).
    clock_mean: f64,
    /// Memoized LogGP transfer times keyed by (link class, bytes): the
    /// transfer cost depends only on same-host-ness / the site pair, so a
    /// handful of entries covers any schedule.
    edge_cache: HashMap<(u32, u64), SimDuration>,
    // --- ring tables (see the module docs) ---
    /// Site index of each host id (static topology data, hot in the ring
    /// wavefront).
    host_site: Vec<u32>,
    /// Two representative hosts per site, for building transfer-table rows
    /// (the second repeats the first at single-host sites, whose distinct-
    /// host intra-site entries are unreachable).
    site_rep: Vec<[HostId; 2]>,
    /// Pooled ring transfer tables, shared by every ring segment with the
    /// same byte structure.
    ring_tables: Vec<RingTable>,
    /// The byte structure each pooled table was built for.
    ring_table_keys: Vec<RingBytes>,
    // --- delta scratch ---
    dirty_flag: Vec<bool>,
    dirty_val: Vec<SimTime>,
    dirty_list: Vec<u32>,
    visit_epoch: Vec<u32>,
    epoch: u32,
    worklist: BinaryHeap<Reverse<u32>>,
    cand: Vec<u32>,
    /// Ring wavefront rows (per-rank clocks in nanoseconds).
    wf_prev: Vec<u64>,
    wf_cur: Vec<u64>,
    /// Per-rank host index / site of one wavefront run.
    host_of: Vec<u32>,
    site_of: Vec<u32>,
    /// Per-rank row expansion of a `Uniform` site×site table, rebuilt from
    /// `site_of` at the start of each wavefront over one — scratch, never
    /// journaled — so the hot loop keeps the sequential `PerSrc` row shape.
    uniform_rows: Vec<u64>,
    moved: Vec<u32>,
    /// Old host of each moved rank (parallel to `moved`).
    moved_old_host: Vec<HostId>,
    compute_affected: Vec<u32>,
    journal: Vec<UndoEntry>,
    pending: Option<PendingMove>,
    /// Delta operations processed by the last `apply` (diagnostics).
    last_delta_ops: usize,
}

impl PlacementCost {
    /// Builds the evaluator: `hosts[rank]` is the initial assignment,
    /// `capacity[host]` the slot count of every host of the topology.
    /// The construction performs one full replay to fill the caches.
    ///
    /// # Panics
    ///
    /// Panics if `hosts` does not match the schedule's rank count, if
    /// `capacity` does not cover the topology, or if the initial placement
    /// already exceeds a host's capacity.
    pub fn new(
        schedule: Arc<CompiledSchedule>,
        hosts: Vec<HostId>,
        capacity: Vec<u32>,
        network: NetworkModel,
        compute: ComputeModel,
    ) -> PlacementCost {
        let n = schedule.size() as usize;
        assert_eq!(hosts.len(), n, "one host per rank");
        let host_count = network.topology().host_count();
        assert_eq!(capacity.len(), host_count, "one capacity per host");
        let mut residents = vec![0u32; host_count];
        let mut ranks_on_host: Vec<Vec<u32>> = vec![Vec::new(); host_count];
        for (r, &h) in hosts.iter().enumerate() {
            residents[h.0] += 1;
            ranks_on_host[h.0].push(r as u32);
        }
        for (h, (&used, &cap)) in residents.iter().zip(&capacity).enumerate() {
            assert!(
                used <= cap,
                "initial placement puts {used} ranks on {} (capacity {cap})",
                HostId(h)
            );
        }
        let caches = schedule
            .segments
            .iter()
            .map(|seg| match seg {
                Segment::Msgs { msgs, .. } => SegCache::Msgs {
                    msgs: vec![
                        MsgCache {
                            in_src: SimTime::ZERO,
                            in_dst: SimTime::ZERO,
                            out_dst: SimTime::ZERO,
                        };
                        msgs.len()
                    ],
                    queued_epoch: vec![0; msgs.len()],
                },
                Segment::Ring { .. } => SegCache::Ring { table: None },
                _ => SegCache::Plain,
            })
            .collect();
        let boundary = vec![vec![SimTime::ZERO; n]; schedule.segments.len()];
        let overhead = network.params().per_message_overhead;
        let topology = network.topology();
        let site_count = topology.site_count();
        let host_site: Vec<u32> = topology.hosts().iter().map(|h| h.site.0 as u32).collect();
        let mut site_rep = vec![[HostId(0); 2]; site_count];
        let mut reps_seen = vec![0u8; site_count];
        for h in topology.hosts() {
            let s = h.site.0;
            match reps_seen[s] {
                0 => {
                    site_rep[s] = [h.id, h.id];
                    reps_seen[s] = 1;
                }
                1 => {
                    site_rep[s][1] = h.id;
                    reps_seen[s] = 2;
                }
                _ => {}
            }
        }
        let mut cost = PlacementCost {
            schedule,
            network,
            compute,
            overhead,
            site_count,
            hosts,
            residents,
            capacity,
            ranks_on_host,
            boundary,
            entry: vec![SimTime::ZERO; n],
            caches,
            makespan: SimDuration::ZERO,
            clock_mean: 0.0,
            edge_cache: HashMap::new(),
            host_site,
            site_rep,
            ring_tables: Vec::new(),
            ring_table_keys: Vec::new(),
            dirty_flag: vec![false; n],
            dirty_val: vec![SimTime::ZERO; n],
            dirty_list: Vec::new(),
            visit_epoch: vec![0; n],
            epoch: 0,
            worklist: BinaryHeap::new(),
            cand: Vec::new(),
            wf_prev: vec![0; n],
            wf_cur: vec![0; n],
            host_of: vec![0; n],
            site_of: vec![0; n],
            uniform_rows: Vec::new(),
            moved: Vec::new(),
            moved_old_host: Vec::new(),
            compute_affected: Vec::new(),
            journal: Vec::new(),
            pending: None,
            last_delta_ops: 0,
        };
        cost.build_ring_tables();
        cost.rebuild();
        cost
    }

    /// The modeled makespan of the current host assignment.
    pub fn cost(&self) -> SimDuration {
        self.makespan
    }

    /// Mean final per-rank clock, in seconds.  A makespan objective is a
    /// `max()` full of plateaus — moving one rank off the slowest host
    /// usually leaves the maximum unchanged — so annealing drivers blend a
    /// small multiple of this into their acceptance energy to restore a
    /// gradient across those plateaus (best-placement tracking stays on the
    /// pure makespan).  Maintained by the same O(ranks) scan as the
    /// makespan, and restored exactly by `undo`.
    pub fn mean_clock_secs(&self) -> f64 {
        self.clock_mean
    }

    /// The current host of every rank.
    pub fn hosts(&self) -> &[HostId] {
        &self.hosts
    }

    /// The final per-rank clocks of the current assignment.
    pub fn clocks(&self) -> &[SimTime] {
        self.boundary.last().unwrap_or(&self.entry)
    }

    /// Ranks currently resident on `host`.
    pub fn residents_on(&self, host: HostId) -> u32 {
        self.residents[host.0]
    }

    /// Idle slots left on `host`.
    pub fn free_on(&self, host: HostId) -> u32 {
        self.capacity[host.0] - self.residents[host.0]
    }

    /// Delta operations (messages, ring receives, compute terms) evaluated
    /// by the last `apply` — the quantity the O(affected) claim is about.
    pub fn last_delta_ops(&self) -> usize {
        self.last_delta_ops
    }

    /// The current assignment as a [`Placement`].
    pub fn to_placement(&self) -> Placement {
        Placement {
            processes: self.hosts.len() as u32,
            replication: 1,
            procs: self
                .hosts
                .iter()
                .enumerate()
                .map(|(rank, &host)| ProcSpec {
                    rank: rank as Rank,
                    replica: 0,
                    host,
                })
                .collect(),
        }
    }

    /// Full model replay of the current assignment on a fresh [`ModelComm`]
    /// — the oracle the delta caches are verified against (and the baseline
    /// of the ≥5× per-move speedup gate in `perf_report`).
    pub fn oracle_clocks(&self) -> Vec<SimTime> {
        let placement = self.to_placement();
        let mut m = ModelComm::new(&placement, self.network.clone(), self.compute.clone());
        self.schedule.drive(&mut m);
        m.clocks().to_vec()
    }

    /// The oracle's makespan (see [`PlacementCost::oracle_clocks`]).
    pub fn oracle_cost(&self) -> SimDuration {
        let placement = self.to_placement();
        let mut m = ModelComm::new(&placement, self.network.clone(), self.compute.clone());
        self.schedule.drive(&mut m);
        m.makespan()
    }

    /// Applies `mv` and returns the new modeled makespan, delta-evaluated.
    /// The move stays in flight until [`PlacementCost::commit`] or
    /// [`PlacementCost::undo`].  A capacity-violating migrate returns an
    /// error and leaves every piece of state untouched.
    ///
    /// # Panics
    ///
    /// Panics if a previous move is still in flight or a rank/host index is
    /// out of range.
    pub fn apply(&mut self, mv: Move) -> Result<SimDuration, MoveError> {
        assert!(
            self.pending.is_none(),
            "commit or undo the previous move before applying another"
        );
        let n = self.hosts.len() as u32;
        self.moved.clear();
        self.moved_old_host.clear();
        self.compute_affected.clear();
        let mut noop = false;
        let mut old_host = HostId(0);
        match mv {
            Move::Swap { a, b } => {
                assert!(a < n && b < n, "swap ranks out of range");
                let (ha, hb) = (self.hosts[a as usize], self.hosts[b as usize]);
                if a == b || ha == hb {
                    noop = true;
                } else {
                    self.hosts[a as usize] = hb;
                    self.hosts[b as usize] = ha;
                    remove_rank(&mut self.ranks_on_host[ha.0], a);
                    remove_rank(&mut self.ranks_on_host[hb.0], b);
                    self.ranks_on_host[hb.0].push(a);
                    self.ranks_on_host[ha.0].push(b);
                    self.moved.extend([a, b]);
                    self.moved_old_host.extend([ha, hb]);
                    // A swap preserves every resident count: only the two
                    // ranks' own compute costs can change.
                    self.compute_affected.extend([a, b]);
                }
            }
            Move::Migrate { rank, to } => {
                assert!(rank < n, "migrate rank out of range");
                assert!(to.0 < self.capacity.len(), "migrate host out of range");
                let from = self.hosts[rank as usize];
                if from == to {
                    noop = true;
                } else if self.residents[to.0] >= self.capacity[to.0] {
                    return Err(MoveError::CapacityExceeded {
                        host: to,
                        capacity: self.capacity[to.0],
                    });
                } else {
                    self.hosts[rank as usize] = to;
                    self.residents[from.0] -= 1;
                    self.residents[to.0] += 1;
                    remove_rank(&mut self.ranks_on_host[from.0], rank);
                    self.ranks_on_host[to.0].push(rank);
                    self.moved.push(rank);
                    self.moved_old_host.push(from);
                    old_host = from;
                    // Resident counts changed on both hosts: every rank
                    // still (or newly) living there re-costs its compute.
                    self.compute_affected
                        .extend_from_slice(&self.ranks_on_host[from.0]);
                    self.compute_affected
                        .extend_from_slice(&self.ranks_on_host[to.0]);
                }
            }
        }
        let old_makespan = self.makespan;
        let old_clock_mean = self.clock_mean;
        self.pending = Some(PendingMove {
            mv,
            old_host,
            noop,
            old_makespan,
            old_clock_mean,
        });
        if !noop {
            self.delta_eval();
        } else {
            self.last_delta_ops = 0;
        }
        Ok(self.makespan)
    }

    /// Keeps the in-flight move (O(1): the caches already describe it).
    ///
    /// # Panics
    ///
    /// Panics if no move is in flight.
    pub fn commit(&mut self) {
        self.pending.take().expect("no move to commit");
        self.journal.clear();
    }

    /// Reverts the in-flight move: every journaled cache cell, the host
    /// assignment and the resident bookkeeping return to their pre-`apply`
    /// state exactly.
    ///
    /// # Panics
    ///
    /// Panics if no move is in flight.
    pub fn undo(&mut self) {
        let p = self.pending.take().expect("no move to undo");
        while let Some(u) = self.journal.pop() {
            match u {
                UndoEntry::Boundary { seg, rank, old } => {
                    self.boundary[seg as usize][rank as usize] = old;
                }
                UndoEntry::Msg { seg, idx, old } => {
                    if let SegCache::Msgs { msgs, .. } = &mut self.caches[seg as usize] {
                        msgs[idx as usize] = old;
                    }
                }
                UndoEntry::RingRow { table, rank, old } => {
                    let s = self.site_count;
                    let RingTable::PerSrc { tsite, .. } = &mut self.ring_tables[table as usize]
                    else {
                        unreachable!("Uniform ring tables are never journaled")
                    };
                    tsite[rank as usize * s..][..s].copy_from_slice(&old);
                }
            }
        }
        self.makespan = p.old_makespan;
        self.clock_mean = p.old_clock_mean;
        if !p.noop {
            match p.mv {
                Move::Swap { a, b } => {
                    let (ha, hb) = (self.hosts[a as usize], self.hosts[b as usize]);
                    self.hosts[a as usize] = hb;
                    self.hosts[b as usize] = ha;
                    remove_rank(&mut self.ranks_on_host[ha.0], a);
                    remove_rank(&mut self.ranks_on_host[hb.0], b);
                    self.ranks_on_host[hb.0].push(a);
                    self.ranks_on_host[ha.0].push(b);
                }
                Move::Migrate { rank, to } => {
                    self.hosts[rank as usize] = p.old_host;
                    self.residents[to.0] -= 1;
                    self.residents[p.old_host.0] += 1;
                    remove_rank(&mut self.ranks_on_host[to.0], rank);
                    self.ranks_on_host[p.old_host.0].push(rank);
                }
            }
        }
    }

    /// Re-parks the evaluator on `new_hosts` under its *current*
    /// capacities: [`Self::rebase`] with the capacity vector unchanged.
    ///
    /// The online searcher parks each pooled evaluator on the annealed
    /// best placement after a walk — the walk itself ends wherever its
    /// last accepted move left it, typically dozens of ranks away from
    /// the best.  Without the re-park, the next arrival's rebase diff is
    /// churn *plus* that annealing drift, which degenerates into the
    /// wholesale path on every arrival; with it, the diff is the
    /// occupancy churn alone.
    pub fn rehome(&mut self, new_hosts: &[HostId]) -> SimDuration {
        let caps = self.capacity.clone();
        self.rebase(new_hosts, &caps)
    }

    /// Re-synchronizes a *warm* evaluator with the grid state of a new
    /// arrival: adopts `new_hosts` as the rank assignment and
    /// `new_capacity` as the per-host slot capacities.  This is the
    /// cross-job half of the warm-reuse story (see the module docs):
    /// between two arrivals of the same kernel shape only a handful of
    /// occupy/release events happened, so the diff against the cached
    /// assignment is usually empty — the O(hosts) capacity-resync early
    /// return — and otherwise small enough that a segment re-run over the
    /// warm caches (no schedule compile, no allocations, no ring-table
    /// build) is the cheapest way to absorb it.
    ///
    /// Capacity changes alone dirty no clocks — the memory-contention model
    /// keys on `residents`, which counts only this schedule's own ranks —
    /// so a pure capacity resync is O(hosts).  The rebase has commit
    /// semantics: the undo journal is cleared, no move can be undone across
    /// it.  The resulting caches are bit-identical to a fresh
    /// [`PlacementCost::new`] with the same arguments, which is what makes
    /// the warm online-search path exact (pinned by proptest).
    ///
    /// Returns the re-evaluated makespan.
    ///
    /// # Panics
    ///
    /// Panics if a move is in flight, if the slice lengths do not match the
    /// schedule/topology, or if the new assignment oversubscribes a host
    /// under the new capacities.
    pub fn rebase(&mut self, new_hosts: &[HostId], new_capacity: &[u32]) -> SimDuration {
        assert!(
            self.pending.is_none(),
            "commit or undo the in-flight move before rebasing"
        );
        assert_eq!(
            new_hosts.len(),
            self.hosts.len(),
            "rebase changes hosts, not the rank count"
        );
        assert_eq!(
            new_capacity.len(),
            self.capacity.len(),
            "one capacity per host"
        );
        self.capacity.copy_from_slice(new_capacity);
        self.moved.clear();
        self.moved_old_host.clear();
        self.compute_affected.clear();
        let n = self.hosts.len();
        let moved_count = new_hosts
            .iter()
            .zip(&self.hosts)
            .filter(|(new_h, old_h)| new_h != old_h)
            .count();
        if moved_count == 0 {
            self.assert_within_capacity();
            self.last_delta_ops = 0;
            return self.makespan;
        }
        // Any moved rank goes wholesale: a collective segment touches
        // every rank, so even a one-rank diff dirties essentially the
        // whole schedule and the journaled delta machinery (per-receive
        // patches, ring re-runs from the earliest touched step) costs
        // *more* than re-running every segment once over the warm caches
        // — measured at every day-mix shape from EP@64 up, and within a
        // microsecond of break-even below that.  Adopt the assignment and
        // rebuild in place: the caches end bit-identical to a fresh
        // [`PlacementCost::new`] either way, and the rebuild skips what
        // actually dominates a cold arrival — the schedule compile, the
        // allocations and the ring-table build.  The zero-diff early
        // return above is the warm fast path the steady-state regime
        // lives on.
        self.resync_ring_rows(new_hosts);
        self.hosts.copy_from_slice(new_hosts);
        self.residents.iter_mut().for_each(|r| *r = 0);
        self.ranks_on_host.iter_mut().for_each(Vec::clear);
        for (r, &h) in self.hosts.iter().enumerate() {
            self.residents[h.0] += 1;
            self.ranks_on_host[h.0].push(r as u32);
        }
        self.assert_within_capacity();
        self.rebuild();
        self.journal.clear();
        self.last_delta_ops = n * self.schedule.segments.len();
        self.makespan
    }

    fn assert_within_capacity(&self) {
        for (h, (&used, &cap)) in self.residents.iter().zip(&self.capacity).enumerate() {
            assert!(
                used <= cap,
                "rebase puts {used} ranks on {} (capacity {cap})",
                HostId(h)
            );
        }
    }

    // -- internals ---------------------------------------------------------

    /// Link class of a host pair: the transfer cost depends only on
    /// same-host-ness and the (directed) site pair.
    #[inline]
    fn edge_class(&self, a: HostId, b: HostId) -> u32 {
        if a == b {
            return 0;
        }
        let topo = self.network.topology();
        let sa = topo.host(a).site.0;
        let sb = topo.host(b).site.0;
        1 + (sa * self.site_count + sb) as u32
    }

    #[inline]
    fn transfer(&mut self, a: HostId, b: HostId, bytes: u64) -> SimDuration {
        let key = (self.edge_class(a, b), bytes);
        let network = &self.network;
        *self
            .edge_cache
            .entry(key)
            .or_insert_with(|| network.transfer_time(a, b, bytes))
    }

    #[inline]
    fn compute_cost(&self, rank: usize, ops: f64, intensity: MemoryIntensity) -> SimDuration {
        let h = self.hosts[rank];
        self.compute
            .compute_time(h, ops, intensity, self.residents[h.0] as usize)
    }

    #[inline]
    fn set_dirty(&mut self, r: u32, v: SimTime) {
        if !self.dirty_flag[r as usize] {
            self.dirty_flag[r as usize] = true;
            self.dirty_list.push(r);
        }
        self.dirty_val[r as usize] = v;
    }

    /// Entry clocks of segment `seg` for a clean rank.
    #[inline]
    fn entry_clock(&self, seg: usize, rank: usize) -> SimTime {
        if seg == 0 {
            SimTime::ZERO
        } else {
            self.boundary[seg - 1][rank]
        }
    }

    /// Full replay filling every cache (construction only; moves maintain
    /// the caches incrementally).
    fn rebuild(&mut self) {
        let schedule = self.schedule.clone();
        let n = schedule.size() as usize;
        let mut clocks = vec![SimTime::ZERO; n];
        for (seg, segment) in schedule.segments.iter().enumerate() {
            match segment {
                Segment::Compute { intensity, ops } => {
                    for (r, c) in clocks.iter_mut().enumerate() {
                        let h = self.hosts[r];
                        *c += self.compute.compute_time(
                            h,
                            ops[r],
                            *intensity,
                            self.residents[h.0] as usize,
                        );
                    }
                }
                Segment::Msgs { msgs, .. } => {
                    for (k, m) in msgs.iter().enumerate() {
                        let (s, d) = (m.src as usize, m.dst as usize);
                        let in_src = clocks[s];
                        let in_dst = clocks[d];
                        let out_src = in_src + self.overhead;
                        let t = self.transfer(self.hosts[s], self.hosts[d], m.bytes);
                        let out_dst = in_dst.max(out_src + t);
                        clocks[s] = out_src;
                        clocks[d] = out_dst;
                        if let SegCache::Msgs { msgs: cache, .. } = &mut self.caches[seg] {
                            cache[k] = MsgCache {
                                in_src,
                                in_dst,
                                out_dst,
                            };
                        }
                    }
                }
                Segment::Ring { bytes } => {
                    if n > 1 {
                        let SegCache::Ring { table } = &self.caches[seg] else {
                            unreachable!("segment/cache shape mismatch")
                        };
                        let table = *table;
                        for (slot, c) in self.wf_prev.iter_mut().zip(&clocks) {
                            *slot = c.as_nanos();
                        }
                        self.ring_wavefront(bytes, table);
                        for (c, &ns) in clocks.iter_mut().zip(&self.wf_prev) {
                            *c = SimTime::from_nanos(ns);
                        }
                    }
                }
                Segment::Advance { d } => {
                    for c in &mut clocks {
                        *c += *d;
                    }
                }
            }
            self.boundary[seg].copy_from_slice(&clocks);
        }
        let (max, sum) = max_and_sum(&clocks);
        self.makespan = max.saturating_since(SimTime::ZERO);
        self.clock_mean = sum / clocks.len().max(1) as f64;
    }

    /// The delta pass: propagate the in-flight move through every segment,
    /// journaling each cache mutation.
    fn delta_eval(&mut self) {
        let schedule = self.schedule.clone();
        let moved = std::mem::take(&mut self.moved);
        let old_hosts = std::mem::take(&mut self.moved_old_host);
        let affected = std::mem::take(&mut self.compute_affected);
        debug_assert!(self.dirty_list.is_empty());
        let mut delta_ops = self.refresh_ring_rows(&moved, &old_hosts);

        for (seg, segment) in schedule.segments.iter().enumerate() {
            match segment {
                Segment::Compute { intensity, ops } => {
                    delta_ops += self.delta_compute(seg, *intensity, ops, &affected);
                }
                Segment::Msgs { msgs, by_rank } => {
                    delta_ops += self.delta_msgs(seg, msgs, by_rank, &moved);
                }
                Segment::Ring { bytes } => {
                    delta_ops += self.delta_ring(seg, bytes, &moved);
                }
                Segment::Advance { d } => {
                    delta_ops += self.delta_advance(seg, *d);
                }
            }
        }

        // New makespan and mean: the final boundary holds the committed
        // clocks of clean ranks and the just-written clocks of dirty ones.
        let finals = self.boundary.last().unwrap_or(&self.entry);
        let (max, sum) = max_and_sum(finals);
        self.makespan = max.saturating_since(SimTime::ZERO);
        self.clock_mean = sum / finals.len().max(1) as f64;

        for &r in &self.dirty_list {
            self.dirty_flag[r as usize] = false;
        }
        self.dirty_list.clear();
        self.moved = moved;
        self.moved_old_host = old_hosts;
        self.compute_affected = affected;
        self.last_delta_ops = delta_ops;
    }

    /// Gathers the currently-dirty ranks (deduplicated) into `self.cand`.
    fn gather_dirty(&mut self) {
        self.epoch += 1;
        let ep = self.epoch;
        let mut cand = std::mem::take(&mut self.cand);
        cand.clear();
        for &r in &self.dirty_list {
            if self.dirty_flag[r as usize] && self.visit_epoch[r as usize] != ep {
                self.visit_epoch[r as usize] = ep;
                cand.push(r);
            }
        }
        self.cand = cand;
    }

    fn delta_compute(
        &mut self,
        seg: usize,
        intensity: MemoryIntensity,
        ops: &[f64],
        affected: &[u32],
    ) -> usize {
        self.gather_dirty();
        let ep = self.epoch;
        let mut cand = std::mem::take(&mut self.cand);
        for &r in affected {
            if self.visit_epoch[r as usize] != ep {
                self.visit_epoch[r as usize] = ep;
                cand.push(r);
            }
        }
        for &r in &cand {
            let ri = r as usize;
            let in_v = if self.dirty_flag[ri] {
                self.dirty_val[ri]
            } else {
                self.entry_clock(seg, ri)
            };
            let out = in_v + self.compute_cost(ri, ops[ri], intensity);
            let cached = self.boundary[seg][ri];
            if out != cached {
                self.journal.push(UndoEntry::Boundary {
                    seg: seg as u32,
                    rank: r,
                    old: cached,
                });
                self.boundary[seg][ri] = out;
                self.set_dirty(r, out);
            } else {
                self.dirty_flag[ri] = false;
            }
        }
        let n = cand.len();
        self.cand = cand;
        n
    }

    fn delta_advance(&mut self, seg: usize, d: SimDuration) -> usize {
        self.gather_dirty();
        let cand = std::mem::take(&mut self.cand);
        for &r in &cand {
            let ri = r as usize;
            let out = self.dirty_val[ri] + d;
            let cached = self.boundary[seg][ri];
            if out != cached {
                self.journal.push(UndoEntry::Boundary {
                    seg: seg as u32,
                    rank: r,
                    old: cached,
                });
                self.boundary[seg][ri] = out;
                self.dirty_val[ri] = out;
            } else {
                self.dirty_flag[ri] = false;
            }
        }
        let n = cand.len();
        self.cand = cand;
        n
    }

    /// Updates the segment's boundary from the ranks still dirty at its end
    /// (their boundary value necessarily changed; see the module docs).
    fn sweep_boundary(&mut self, seg: usize) {
        self.gather_dirty();
        let cand = std::mem::take(&mut self.cand);
        for &r in &cand {
            let ri = r as usize;
            let old = self.boundary[seg][ri];
            let new = self.dirty_val[ri];
            if old != new {
                self.journal.push(UndoEntry::Boundary {
                    seg: seg as u32,
                    rank: r,
                    old,
                });
                self.boundary[seg][ri] = new;
            } else {
                // The clock re-converged exactly onto the cached boundary.
                self.dirty_flag[ri] = false;
            }
        }
        self.cand = cand;
    }

    fn delta_msgs(
        &mut self,
        seg: usize,
        msgs: &[MsgRec],
        by_rank: &[Box<[u32]>],
        moved: &[u32],
    ) -> usize {
        let mut cache = std::mem::replace(&mut self.caches[seg], SegCache::Plain);
        let SegCache::Msgs {
            msgs: mcache,
            queued_epoch,
        } = &mut cache
        else {
            unreachable!("segment/cache shape mismatch")
        };
        self.epoch += 1;
        let ep = self.epoch;
        debug_assert!(self.worklist.is_empty());
        // Seed: the first message of every entry-dirty rank, every message
        // of a moved rank (their transfer costs changed).
        for i in 0..self.dirty_list.len() {
            let r = self.dirty_list[i];
            if !self.dirty_flag[r as usize] {
                continue;
            }
            if let Some(&k) = by_rank[r as usize].first() {
                if queued_epoch[k as usize] != ep {
                    queued_epoch[k as usize] = ep;
                    self.worklist.push(Reverse(k));
                }
            }
        }
        for &m in moved {
            for &k in by_rank[m as usize].iter() {
                if queued_epoch[k as usize] != ep {
                    queued_epoch[k as usize] = ep;
                    self.worklist.push(Reverse(k));
                }
            }
        }
        let mut processed = 0usize;
        while let Some(Reverse(k)) = self.worklist.pop() {
            processed += 1;
            let m = msgs[k as usize];
            let (s, d) = (m.src as usize, m.dst as usize);
            let old = mcache[k as usize];
            let in_src = if self.dirty_flag[s] {
                self.dirty_val[s]
            } else {
                old.in_src
            };
            let in_dst = if self.dirty_flag[d] {
                self.dirty_val[d]
            } else {
                old.in_dst
            };
            let out_src = in_src + self.overhead;
            let t = self.transfer(self.hosts[s], self.hosts[d], m.bytes);
            let out_dst = in_dst.max(out_src + t);
            if in_src != old.in_src || in_dst != old.in_dst || out_dst != old.out_dst {
                self.journal.push(UndoEntry::Msg {
                    seg: seg as u32,
                    idx: k,
                    old,
                });
                mcache[k as usize] = MsgCache {
                    in_src,
                    in_dst,
                    out_dst,
                };
            }
            // The sender's post-message clock changes exactly when its input
            // did (the overhead is constant).
            if in_src != old.in_src {
                self.set_dirty(m.src, out_src);
                push_next(&mut self.worklist, queued_epoch, ep, &by_rank[s], k);
            } else {
                self.dirty_flag[s] = false;
            }
            if out_dst != old.out_dst {
                self.set_dirty(m.dst, out_dst);
                push_next(&mut self.worklist, queued_epoch, ep, &by_rank[d], k);
            } else {
                self.dirty_flag[d] = false;
            }
        }
        self.caches[seg] = cache;
        self.sweep_boundary(seg);
        processed
    }

    /// Re-derives one ring segment with the two-row wavefront.  A move
    /// perturbs the transfer cost of a moved rank against *every* partner,
    /// and the ring's max-plus recurrence can carry that to any exit clock,
    /// so the delta pass re-runs all n−1 steps — but over the pooled
    /// integer tables, which is what makes it several times cheaper than a
    /// replay (see the module docs).
    fn delta_ring(&mut self, seg: usize, bytes: &RingBytes, _moved: &[u32]) -> usize {
        let n = self.hosts.len();
        if n <= 1 {
            return 0;
        }
        let SegCache::Ring { table } = &self.caches[seg] else {
            unreachable!("segment/cache shape mismatch")
        };
        let table = *table;
        // Entry row: the committed segment entry with dirty overrides.
        for r in 0..n {
            let c = if self.dirty_flag[r] {
                self.dirty_val[r]
            } else {
                self.entry_clock(seg, r)
            };
            self.wf_prev[r] = c.as_nanos();
        }
        self.ring_wavefront(bytes, table);
        // Flip the frontier: exactly the ranks whose exit clock changed are
        // dirty entering the next segment.
        let mut list = std::mem::take(&mut self.dirty_list);
        for &r in &list {
            self.dirty_flag[r as usize] = false;
        }
        list.clear();
        self.dirty_list = list;
        for d in 0..n {
            let new = SimTime::from_nanos(self.wf_prev[d]);
            let old = self.boundary[seg][d];
            if new != old {
                self.journal.push(UndoEntry::Boundary {
                    seg: seg as u32,
                    rank: d as u32,
                    old,
                });
                self.boundary[seg][d] = new;
                self.set_dirty(d as u32, new);
            }
        }
        (n - 1) * n
    }

    /// Builds the pooled ring transfer tables and points each ring
    /// segment's cache at its table (construction only).
    fn build_ring_tables(&mut self) {
        let schedule = self.schedule.clone();
        let n = self.hosts.len();
        let mut tables: Vec<RingTable> = Vec::new();
        let mut keys: Vec<RingBytes> = Vec::new();
        for (seg, segment) in schedule.segments.iter().enumerate() {
            let Segment::Ring { bytes } = segment else {
                continue;
            };
            let idx = if matches!(bytes, RingBytes::PerPair(_)) {
                None
            } else if let Some(i) = keys.iter().position(|k| k == bytes) {
                Some(i as u32)
            } else if let RingBytes::Uniform(b) = bytes {
                // Uniform rings send the same byte count on every edge, so
                // the table is a site×site matrix keyed by static topology
                // data only — fully move-invariant, no journaling ever.
                let b = *b;
                let s_count = self.site_count;
                let mut site = vec![0u64; s_count * s_count].into_boxed_slice();
                for sa in 0..s_count {
                    let src = self.site_rep[sa][0];
                    for sb in 0..s_count {
                        let rep = self.site_rep[sb];
                        // The diagonal wants the distinct-host intra-site
                        // cost; same-host pairs are patched by the colo
                        // list, so a single-host site's loopback entry here
                        // is unreachable (but harmless).
                        let dst = if rep[0] != src { rep[0] } else { rep[1] };
                        site[sa * s_count + sb] = self.transfer(src, dst, b).as_nanos();
                    }
                }
                let rep = self.site_rep[0][0];
                let tsame = self.transfer(rep, rep, b).as_nanos();
                keys.push(bytes.clone());
                tables.push(RingTable::Uniform { tsame, site });
                Some((tables.len() - 1) as u32)
            } else {
                let mut tsame = vec![0u64; n].into_boxed_slice();
                let mut tsite = vec![0u64; n * self.site_count].into_boxed_slice();
                for src in 0..n {
                    // For PerSrc the byte count is destination-independent;
                    // the dst argument is arbitrary.
                    let b = bytes.get(n, src, 0);
                    let h = self.hosts[src];
                    tsame[src] = self.transfer(h, h, b).as_nanos();
                    let row = &mut tsite[src * self.site_count..][..self.site_count];
                    for (s, slot) in row.iter_mut().enumerate() {
                        let rep = self.site_rep[s];
                        let dst = if rep[0] != h { rep[0] } else { rep[1] };
                        *slot = self.transfer(h, dst, b).as_nanos();
                    }
                }
                keys.push(bytes.clone());
                tables.push(RingTable::PerSrc { tsame, tsite });
                Some((tables.len() - 1) as u32)
            };
            self.caches[seg] = SegCache::Ring { table: idx };
        }
        self.ring_tables = tables;
        self.ring_table_keys = keys;
    }

    /// Rewrites the `tsite` row of every moved rank whose site changed, in
    /// every pooled `PerSrc` table, journaling the old rows.  `Uniform`
    /// tables are move-invariant and skipped entirely; `tsame` never
    /// changes (loopback cost is host-independent) and a same-site move
    /// keeps the rank's site-pair classes, so most moves touch nothing.
    fn refresh_ring_rows(&mut self, moved: &[u32], old_hosts: &[HostId]) -> usize {
        if self.ring_tables.is_empty() {
            return 0;
        }
        let mut ops = 0usize;
        let mut tables = std::mem::take(&mut self.ring_tables);
        let keys = std::mem::take(&mut self.ring_table_keys);
        let n = self.hosts.len();
        let s_count = self.site_count;
        for (&r, &old_h) in moved.iter().zip(old_hosts) {
            let new_h = self.hosts[r as usize];
            if self.host_site[old_h.0] == self.host_site[new_h.0] {
                continue;
            }
            for (ti, (table, key)) in tables.iter_mut().zip(&keys).enumerate() {
                let RingTable::PerSrc { tsite, .. } = table else {
                    continue;
                };
                let b = key.get(n, r as usize, 0);
                let row = &mut tsite[r as usize * s_count..][..s_count];
                self.journal.push(UndoEntry::RingRow {
                    table: ti as u32,
                    rank: r,
                    old: row.to_vec().into_boxed_slice(),
                });
                for (s, slot) in row.iter_mut().enumerate() {
                    let rep = self.site_rep[s];
                    let dst = if rep[0] != new_h { rep[0] } else { rep[1] };
                    *slot = self.transfer(new_h, dst, b).as_nanos();
                }
                ops += s_count;
            }
        }
        self.ring_tables = tables;
        self.ring_table_keys = keys;
        ops
    }

    /// The wholesale-rebase counterpart of [`Self::refresh_ring_rows`]:
    /// rewrites the `tsite` row of every rank whose site changes between
    /// the current assignment and `new_hosts`, without journaling (the
    /// rebase clears the undo journal anyway).  Must run *before* the new
    /// hosts are adopted, while the old assignment is still readable.
    fn resync_ring_rows(&mut self, new_hosts: &[HostId]) {
        if self.ring_tables.is_empty() {
            return;
        }
        let mut tables = std::mem::take(&mut self.ring_tables);
        let keys = std::mem::take(&mut self.ring_table_keys);
        let n = self.hosts.len();
        let s_count = self.site_count;
        for r in 0..n {
            let (old_h, new_h) = (self.hosts[r], new_hosts[r]);
            if self.host_site[old_h.0] == self.host_site[new_h.0] {
                continue;
            }
            for (table, key) in tables.iter_mut().zip(&keys) {
                let RingTable::PerSrc { tsite, .. } = table else {
                    continue;
                };
                let b = key.get(n, r, 0);
                let row = &mut tsite[r * s_count..][..s_count];
                for (s, slot) in row.iter_mut().enumerate() {
                    let rep = self.site_rep[s];
                    let dst = if rep[0] != new_h { rep[0] } else { rep[1] };
                    *slot = self.transfer(new_h, dst, b).as_nanos();
                }
            }
        }
        self.ring_tables = tables;
        self.ring_table_keys = keys;
    }

    /// Runs one ring segment's full wavefront.  `wf_prev` holds the
    /// per-rank entry clocks in nanoseconds on entry and the exit clocks on
    /// return.  The per-step recurrence — `C[d] = max(P[d], P[src] + t) + o`
    /// with `src = d − step (mod n)` — is exactly [`ModelComm`]'s ring rule
    /// (stamp all sends against pre-step clocks, then take each receive's
    /// max) rewritten over u64 nanoseconds, which is exact because
    /// `SimTime` *is* a saturating u64 nanosecond counter.
    fn ring_wavefront(&mut self, bytes: &RingBytes, table: Option<u32>) {
        let n = self.hosts.len();
        let mut prev = std::mem::take(&mut self.wf_prev);
        let mut cur = std::mem::take(&mut self.wf_cur);
        let mut host_of = std::mem::take(&mut self.host_of);
        let mut site_of = std::mem::take(&mut self.site_of);
        for (r, &h) in self.hosts.iter().enumerate() {
            host_of[r] = h.0 as u32;
            site_of[r] = self.host_site[h.0];
        }
        let o = self.overhead.as_nanos();
        match table {
            Some(ti) => {
                let mut urows = std::mem::take(&mut self.uniform_rows);
                let t = &self.ring_tables[ti as usize];
                let s_count = self.site_count;
                // Same-host (src, dst) pairs are rare — at most cores per
                // host — so the hot loop below costs every receive through
                // the site row unconditionally and the loopback pairs are
                // patched afterwards, keyed by their ring-step distance.
                // Sorting by host finds the co-located runs.
                let mut by_host: Vec<(u32, u32)> =
                    (0..n as u32).map(|r| (host_of[r as usize], r)).collect();
                by_host.sort_unstable();
                let mut colo: Vec<(u32, u32, u32)> = Vec::new();
                let mut i = 0;
                while i < n {
                    let mut j = i + 1;
                    while j < n && by_host[j].0 == by_host[i].0 {
                        j += 1;
                    }
                    for &(_, a) in &by_host[i..j] {
                        for &(_, b) in &by_host[i..j] {
                            if a != b {
                                let step = (b as usize + n - a as usize) % n;
                                colo.push((step as u32, b, a));
                            }
                        }
                    }
                    i = j;
                }
                colo.sort_unstable();
                let mut pi = 0usize;
                // Per-src site rows for the hot loop: a `PerSrc` table
                // holds them directly; a `Uniform` table is expanded from
                // `site_of` into scratch once per wavefront (O(ranks·sites),
                // dwarfed by the O(ranks²) recurrence) so the inner loops
                // keep the sequential row iteration — a per-receive
                // `site[ss·s + sd]` gather here measured ~2× slower on the
                // ring-dominated IS schedule.
                let rows: &[u64] = match t {
                    RingTable::Uniform { site, .. } => {
                        urows.clear();
                        urows.reserve(n * s_count);
                        for &s in &site_of[..n] {
                            urows.extend_from_slice(&site[s as usize * s_count..][..s_count]);
                        }
                        &urows
                    }
                    RingTable::PerSrc { tsite, .. } => tsite,
                };
                // The wrap in `src = d − step (mod n)` splits each step into
                // two linear runs, so the whole row is zipped slices: no
                // index arithmetic, no bounds checks, no per-cell branch.
                for step in 1..n {
                    // d in step..n pairs with src = d − step.
                    for ((((c, &pd), &ps), &sd), row) in cur[step..]
                        .iter_mut()
                        .zip(&prev[step..])
                        .zip(&prev[..n - step])
                        .zip(&site_of[step..])
                        .zip(rows.chunks_exact(s_count))
                    {
                        *c = pd
                            .max(ps.saturating_add(row[sd as usize]))
                            .saturating_add(o);
                    }
                    // d in 0..step wraps to src = d + n − step.
                    for ((((c, &pd), &ps), &sd), row) in cur[..step]
                        .iter_mut()
                        .zip(&prev[..step])
                        .zip(&prev[n - step..])
                        .zip(&site_of[..step])
                        .zip(rows[(n - step) * s_count..].chunks_exact(s_count))
                    {
                        *c = pd
                            .max(ps.saturating_add(row[sd as usize]))
                            .saturating_add(o);
                    }
                    while pi < colo.len() && colo[pi].0 as usize == step {
                        let (_, d, src) = colo[pi];
                        let ts = match t {
                            RingTable::Uniform { tsame, .. } => *tsame,
                            RingTable::PerSrc { tsame, .. } => tsame[src as usize],
                        };
                        cur[d as usize] = prev[d as usize]
                            .max(prev[src as usize].saturating_add(ts))
                            .saturating_add(o);
                        pi += 1;
                    }
                    std::mem::swap(&mut prev, &mut cur);
                }
                self.uniform_rows = urows;
            }
            None => {
                // PerPair fallback: per-receive byte counts, costed through
                // the (class, bytes) transfer memo.
                for step in 1..n {
                    for d in 0..n {
                        let src = if d >= step { d - step } else { d + n - step };
                        let b = bytes.get(n, src, d);
                        let tt = self
                            .transfer(
                                HostId(host_of[src] as usize),
                                HostId(host_of[d] as usize),
                                b,
                            )
                            .as_nanos();
                        cur[d] = prev[d].max(prev[src].saturating_add(tt)).saturating_add(o);
                    }
                    std::mem::swap(&mut prev, &mut cur);
                }
            }
        }
        self.wf_prev = prev;
        self.wf_cur = cur;
        self.host_of = host_of;
        self.site_of = site_of;
    }

    /// Bytes of ring-cache state the evaluator holds: the pooled transfer
    /// tables plus the wavefront scratch rows — O(ranks · sites), versus
    /// the O(steps · ranks²) per-(step, rank) clock rows of the previous
    /// design (reported and bounded by `perf_report`'s `is_search` gate).
    pub fn ring_cache_bytes(&self) -> usize {
        let tables: usize = self
            .ring_tables
            .iter()
            .map(|t| match t {
                RingTable::Uniform { site, .. } => (site.len() + 1) * std::mem::size_of::<u64>(),
                RingTable::PerSrc { tsame, tsite } => {
                    (tsame.len() + tsite.len()) * std::mem::size_of::<u64>()
                }
            })
            .sum();
        tables
            + (self.wf_prev.len() + self.wf_cur.len() + self.uniform_rows.len())
                * std::mem::size_of::<u64>()
            + (self.host_of.len() + self.site_of.len()) * std::mem::size_of::<u32>()
    }

    /// Byte accounting of the `Uniform` specialisation: `(tables,
    /// uniform_bytes, per_src_equivalent_bytes)` — how many pooled transfer
    /// tables compressed to the move-invariant site×site form, the bytes
    /// they hold, and what the same tables would occupy in the journaled
    /// `PerSrc` layout (a `tsame` entry plus a site row per rank).
    pub fn uniform_ring_summary(&self) -> (usize, usize, usize) {
        let n = self.hosts.len();
        let word = std::mem::size_of::<u64>();
        let mut tables = 0usize;
        let mut bytes = 0usize;
        let mut per_src = 0usize;
        for t in &self.ring_tables {
            if let RingTable::Uniform { site, .. } = t {
                tables += 1;
                bytes += (site.len() + 1) * word;
                per_src += (n + n * self.site_count) * word;
            }
        }
        (tables, bytes, per_src)
    }
}

/// One pass over the final clocks: the largest (the makespan) and the sum
/// in seconds (the plateau-breaking regularizer of annealing drivers).
fn max_and_sum(clocks: &[SimTime]) -> (SimTime, f64) {
    let mut max = SimTime::ZERO;
    let mut sum = 0.0f64;
    for &c in clocks {
        max = max.max(c);
        sum += c.as_secs_f64();
    }
    (max, sum)
}

/// Removes one occurrence of `rank` from a host's resident list.
fn remove_rank(list: &mut Vec<u32>, rank: u32) {
    let i = list
        .iter()
        .position(|&r| r == rank)
        .expect("rank resident list out of sync");
    list.swap_remove(i);
}

/// Pushes the next message of a rank after message `k` onto the worklist.
#[inline]
fn push_next(
    worklist: &mut BinaryHeap<Reverse<u32>>,
    queued_epoch: &mut [u32],
    ep: u32,
    by_rank: &[u32],
    k: u32,
) {
    let pos = by_rank.partition_point(|&i| i <= k);
    if let Some(&next) = by_rank.get(pos) {
        if queued_epoch[next as usize] != ep {
            queued_epoch[next as usize] = ep;
            worklist.push(Reverse(next));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2pmpi_simgrid::topology::{NodeSpec, Topology, TopologyBuilder};
    use std::sync::Arc;

    fn topology() -> Arc<Topology> {
        let mut b = TopologyBuilder::new();
        let s0 = b.add_site("local");
        let s1 = b.add_site("remote");
        b.add_cluster(s0, "l", "cpu", 4, NodeSpec::default());
        b.add_cluster(s1, "r", "cpu", 4, NodeSpec::default());
        b.set_rtt(s0, s1, SimDuration::from_millis(10));
        Arc::new(b.build())
    }

    fn model_for(placement: &Placement, t: &Arc<Topology>) -> ModelComm {
        ModelComm::new(
            placement,
            NetworkModel::new(t.clone()),
            ComputeModel::new(t.clone()),
        )
    }

    #[test]
    fn loggp_params_reflect_the_link() {
        let t = topology();
        let m = NetworkModel::new(t.clone());
        let l0 = t.host_by_name("l-0").unwrap().id;
        let r0 = t.host_by_name("r-0").unwrap().id;
        let local = LogGpParams::between(&m, l0, l0);
        let wan = LogGpParams::between(&m, l0, r0);
        assert_eq!(wan.latency, SimDuration::from_millis(5));
        assert!(local.latency < wan.latency);
        assert_eq!(wan.overhead, m.params().per_message_overhead);
        assert_eq!(wan.gap, wan.overhead);
        // 1 Gbps NIC bottleneck with 1.05 framing: ~8.4 ns per byte.
        assert!((wan.secs_per_byte - 8.4e-9).abs() < 0.1e-9);
        // Loopback is modelled faster than the NIC.
        assert!(local.secs_per_byte < wan.secs_per_byte);
    }

    #[test]
    fn single_rank_collectives_are_free() {
        let t = topology();
        let p = Placement::co_located(1, t.hosts()[0].id);
        let mut m = model_for(&p, &t);
        m.bcast(0, 1 << 20);
        m.reduce(0, 1 << 20);
        m.allreduce(1 << 20);
        m.alltoall(1 << 20);
        assert_eq!(m.makespan(), SimDuration::ZERO);
    }

    #[test]
    fn bcast_cost_grows_logarithmically() {
        let t = topology();
        let hosts: Vec<_> = t.hosts().iter().map(|h| h.id).take(4).collect();
        // 2 ranks: one message; 4 ranks: two latency steps on the critical
        // path (binomial tree), not three.
        let mut two = model_for(&Placement::one_per_host(&hosts[..2]), &t);
        two.bcast(0, 64);
        let mut four = model_for(&Placement::one_per_host(&hosts), &t);
        four.bcast(0, 64);
        let t2 = two.makespan();
        let t4 = four.makespan();
        assert!(t4 > t2);
        assert!(
            t4 < t2 * 3,
            "4-rank binomial bcast {t4} must cost ~2 latency steps, not 3 ({t2} each)"
        );
        assert_eq!(four.stats().messages_sent, 3);
    }

    #[test]
    fn cross_site_collectives_cost_more() {
        let t = topology();
        let local: Vec<_> = t.hosts().iter().take(4).map(|h| h.id).collect();
        let mixed: Vec<_> = t.hosts().iter().skip(2).take(4).map(|h| h.id).collect();
        let mut a = model_for(&Placement::one_per_host(&local), &t);
        a.allreduce(1024);
        let mut b = model_for(&Placement::one_per_host(&mixed), &t);
        b.allreduce(1024);
        assert!(b.makespan() > a.makespan() * 10);
    }

    #[test]
    fn compute_respects_residents() {
        let t = topology();
        let host = t.hosts()[0].id;
        let spread: Vec<_> = t.hosts().iter().take(4).map(|h| h.id).collect();
        let mut packed = model_for(&Placement::co_located(4, host), &t);
        packed.compute(MemoryIntensity::MEMORY_BOUND, |_| 1e9);
        let mut spread_m = model_for(&Placement::one_per_host(&spread), &t);
        spread_m.compute(MemoryIntensity::MEMORY_BOUND, |_| 1e9);
        assert!(packed.makespan() > spread_m.makespan());
        assert_eq!(packed.stats().compute_ops, 4e9);
    }

    #[test]
    fn alltoall_counts_ring_messages() {
        let t = topology();
        let hosts: Vec<_> = t.hosts().iter().take(4).map(|h| h.id).collect();
        let mut m = model_for(&Placement::one_per_host(&hosts), &t);
        m.alltoall(256);
        // n(n-1) messages of 256 bytes.
        assert_eq!(m.stats().messages_sent, 12);
        assert_eq!(m.stats().bytes_sent, 12 * 256);
        assert!(m.makespan() > SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "unreplicated")]
    fn replicated_placement_is_rejected() {
        let t = topology();
        let hosts: Vec<_> = t.hosts().iter().take(4).map(|h| h.id).collect();
        let p = Placement::replicated_round_robin(2, 2, &hosts);
        model_for(&p, &t);
    }

    /// A small mixed program exercised by the schedule/evaluator tests.
    fn record_program<P: CollectiveProgram>(p: &mut P) {
        p.compute(MemoryIntensity::MEMORY_BOUND, |r| 1e8 * (r as f64 + 1.0));
        p.allreduce(64);
        p.alltoall(128);
        p.alltoallv(|src, _| src as u64 * 16);
        p.allgather(|r| (r % 3) as u64 * 8 + 8);
        p.barrier();
    }

    fn evaluator_for(hosts: Vec<HostId>, t: &Arc<Topology>) -> PlacementCost {
        let mut b = ScheduleBuilder::new(hosts.len() as u32);
        record_program(&mut b);
        let schedule = Arc::new(b.finish());
        let capacity = t.hosts().iter().map(|h| h.cores as u32).collect();
        PlacementCost::new(
            schedule,
            hosts,
            capacity,
            NetworkModel::new(t.clone()),
            ComputeModel::new(t.clone()),
        )
    }

    #[test]
    fn compiled_schedule_drives_a_model_comm_identically() {
        let t = topology();
        let hosts: Vec<_> = t.hosts().iter().take(6).map(|h| h.id).collect();
        let placement = Placement::one_per_host(&hosts);
        let mut direct = model_for(&placement, &t);
        record_program(&mut direct);

        let mut b = ScheduleBuilder::new(6);
        record_program(&mut b);
        let schedule = b.finish();
        let mut driven = model_for(&placement, &t);
        schedule.drive(&mut driven);

        assert_eq!(direct.clocks(), driven.clocks());
        assert_eq!(direct.stats().messages_sent, driven.stats().messages_sent);
    }

    #[test]
    fn placement_cost_matches_the_oracle_at_rest_and_after_moves() {
        let t = topology();
        let hosts: Vec<_> = t.hosts().iter().take(6).map(|h| h.id).collect();
        let mut cost = evaluator_for(hosts, &t);
        assert_eq!(cost.clocks(), &cost.oracle_clocks()[..]);

        // A cross-site swap changes the picture; delta == oracle.
        let before = cost.cost();
        let after = cost.apply(Move::Swap { a: 0, b: 5 }).unwrap();
        cost.commit();
        assert_ne!(before, after);
        assert_eq!(cost.clocks(), &cost.oracle_clocks()[..]);
        assert_eq!(cost.cost(), cost.oracle_cost());

        // Migrate onto an occupied-but-not-full host (co-location).
        let dst = cost.hosts()[1];
        let c = cost.apply(Move::Migrate { rank: 2, to: dst }).unwrap();
        cost.commit();
        assert_eq!(c, cost.oracle_cost());
        assert_eq!(cost.residents_on(dst), 2);
    }

    #[test]
    fn undo_restores_the_exact_pre_move_state() {
        let t = topology();
        let hosts: Vec<_> = t.hosts().iter().take(6).map(|h| h.id).collect();
        let mut cost = evaluator_for(hosts.clone(), &t);
        let before_cost = cost.cost();
        let before_clocks = cost.clocks().to_vec();

        cost.apply(Move::Swap { a: 1, b: 4 }).unwrap();
        cost.undo();
        assert_eq!(cost.cost(), before_cost);
        assert_eq!(cost.clocks(), &before_clocks[..]);
        assert_eq!(cost.hosts(), &hosts[..]);

        // Undo of a migrate restores the resident counts too.
        let dst = hosts[0];
        cost.apply(Move::Migrate { rank: 3, to: dst }).unwrap();
        cost.undo();
        assert_eq!(cost.residents_on(dst), 1);
        assert_eq!(cost.hosts(), &hosts[..]);
        assert_eq!(cost.clocks(), &before_clocks[..]);
    }

    #[test]
    fn capacity_violating_migrate_is_rejected_without_mutation() {
        let t = topology();
        // Fill host 0 (2 cores) completely, rank 2 lives elsewhere.
        let h0 = t.hosts()[0].id;
        let h5 = t.hosts()[5].id;
        let cap0 = t.host(h0).cores as u32;
        let mut hosts = vec![h0; cap0 as usize];
        hosts.push(h5);
        let full_rank = cap0;
        let mut cost = evaluator_for(hosts.clone(), &t);
        let before_cost = cost.cost();
        let before_clocks = cost.clocks().to_vec();
        let err = cost
            .apply(Move::Migrate {
                rank: full_rank,
                to: h0,
            })
            .unwrap_err();
        assert_eq!(
            err,
            MoveError::CapacityExceeded {
                host: h0,
                capacity: cap0
            }
        );
        // Nothing moved, nothing journaled: the next apply is legal and the
        // state is exactly the pre-error one.
        assert_eq!(cost.hosts(), &hosts[..]);
        assert_eq!(cost.cost(), before_cost);
        assert_eq!(cost.clocks(), &before_clocks[..]);
        let after = cost.apply(Move::Swap { a: 0, b: full_rank }).unwrap();
        cost.commit();
        assert_eq!(after, cost.oracle_cost());
    }

    #[test]
    fn noop_moves_cost_nothing_and_commit_cleanly() {
        let t = topology();
        let hosts: Vec<_> = t.hosts().iter().take(4).map(|h| h.id).collect();
        let mut cost = evaluator_for(hosts.clone(), &t);
        let before = cost.cost();
        let same = cost.apply(Move::Swap { a: 2, b: 2 }).unwrap();
        assert_eq!(same, before);
        assert_eq!(cost.last_delta_ops(), 0);
        cost.undo();
        let same = cost
            .apply(Move::Migrate {
                rank: 1,
                to: hosts[1],
            })
            .unwrap();
        assert_eq!(same, before);
        cost.commit();
        assert_eq!(cost.hosts(), &hosts[..]);
    }

    #[test]
    fn transpose_alltoallv_compresses_despite_the_diagonal() {
        // FT-shaped: 0 bytes to self, a constant block everywhere else.
        // The diagonal is never costed (ring steps run 1..n), so this must
        // compress to Uniform — and cost exactly what the direct model run
        // charges.
        let mut b = ScheduleBuilder::new(6);
        b.alltoallv(|src, dst| if src == dst { 0 } else { 4096 });
        b.alltoallv(|src, dst| if src == dst { 0 } else { (src as u64 + 1) * 64 });
        b.alltoallv(|src, dst| (src as u64 * 7 + dst as u64) % 13 * 8);
        let schedule = b.finish();
        let forms: Vec<_> = schedule
            .segments
            .iter()
            .filter_map(|s| match s {
                Segment::Ring { bytes } => Some(bytes),
                _ => None,
            })
            .collect();
        assert_eq!(forms.len(), 3);
        assert!(matches!(forms[0], RingBytes::Uniform(4096)));
        assert!(matches!(forms[1], RingBytes::PerSrc(_)));
        assert!(matches!(forms[2], RingBytes::PerPair(_)));

        let t = topology();
        let hosts: Vec<_> = t.hosts().iter().take(6).map(|h| h.id).collect();
        let placement = Placement::one_per_host(&hosts);
        let mut direct = model_for(&placement, &t);
        direct.alltoallv(|src, dst| if src == dst { 0 } else { 4096 });
        direct.alltoallv(|src, dst| if src == dst { 0 } else { (src as u64 + 1) * 64 });
        direct.alltoallv(|src, dst| (src as u64 * 7 + dst as u64) % 13 * 8);
        let mut driven = model_for(&placement, &t);
        schedule.drive(&mut driven);
        assert_eq!(direct.clocks(), driven.clocks());
    }

    #[test]
    fn ring_tables_pool_across_identical_segments() {
        // Ten iterations of the same uniform ring share one pooled table:
        // the evaluator's ring state must cost the same as a single ring's.
        let t = topology();
        let hosts: Vec<_> = t.hosts().iter().map(|h| h.id).collect();
        let capacity: Vec<u32> = t.hosts().iter().map(|h| h.cores as u32).collect();
        let build = |rings: usize| {
            let mut b = ScheduleBuilder::new(hosts.len() as u32);
            for _ in 0..rings {
                b.alltoall(512);
            }
            PlacementCost::new(
                Arc::new(b.finish()),
                hosts.clone(),
                capacity.clone(),
                NetworkModel::new(t.clone()),
                ComputeModel::new(t.clone()),
            )
        };
        let one = build(1);
        let ten = build(10);
        assert_eq!(one.ring_cache_bytes(), ten.ring_cache_bytes());
        // O(ranks · sites) state: 8 ranks on a 2-site grid is well under a
        // kilobyte of table plus the shared wavefront scratch.
        assert!(ten.ring_cache_bytes() < 1024);

        // Moves on the pooled schedule still match the oracle.
        let mut ten = ten;
        ten.apply(Move::Swap { a: 0, b: 7 }).unwrap();
        ten.commit();
        assert_eq!(ten.clocks(), &ten.oracle_clocks()[..]);
    }

    #[test]
    fn delta_visits_far_fewer_ops_than_the_full_schedule() {
        let t = topology();
        let hosts: Vec<_> = t.hosts().iter().map(|h| h.id).collect();
        // EP-shaped program: one compute phase and two allreduces.
        let n = hosts.len() as u32;
        let mut b = ScheduleBuilder::new(n);
        b.compute(MemoryIntensity::CPU_BOUND, |_| 1e9);
        b.allreduce(16);
        b.allreduce(96);
        let schedule = Arc::new(b.finish());
        let full_ops = schedule.op_count();
        let capacity = t.hosts().iter().map(|h| h.cores as u32).collect();
        let mut cost = PlacementCost::new(
            schedule,
            hosts,
            capacity,
            NetworkModel::new(t.clone()),
            ComputeModel::new(t.clone()),
        );
        cost.apply(Move::Swap { a: 0, b: 7 }).unwrap();
        cost.commit();
        assert_eq!(cost.cost(), cost.oracle_cost());
        assert!(
            cost.last_delta_ops() < full_ops,
            "delta visited {} ops of a {}-op schedule",
            cost.last_delta_ops(),
            full_ops
        );
    }
}
