//! LogGP-style analytical cost model of the collective operations.
//!
//! The executed runtime ([`crate::runtime::MpiRuntime::run`]) spawns one OS
//! thread per rank and lets the virtual-time cost of a collective *emerge*
//! from thousands of point-to-point messages.  That is faithful but caps
//! Figure 4 sweeps at a few hundred ranks.  This module predicts the same
//! virtual clocks *analytically*: one scalar clock per rank, advanced by
//! walking the exact message schedule of each collective (binomial
//! broadcast/reduce trees, the ring alltoall(v) schedule, linear
//! gather/scatter) under the LogGP cost algebra below — no threads, no
//! channels, no payload bytes.  A 2048-rank NAS-IS iteration that would need
//! 2048 threads and ~4 M channel messages becomes ~4 M scalar clock updates,
//! so sweeps scale to thousands of ranks in seconds.
//!
//! # The LogGP parameterisation
//!
//! LogGP (Alexandrov et al., after the LogP model of Culler et al.) describes
//! a network by:
//!
//! * **L** — the one-way wire latency between two hosts,
//! * **o** — the per-message CPU overhead paid by the software stack,
//! * **g** — the minimum gap between consecutive message injections,
//! * **G** — the gap per byte, i.e. the reciprocal bandwidth for long
//!   messages.
//!
//! The executed runtime's transfer rule (see `p2pmpi_simgrid::network`) is
//!
//! ```text
//! sender:   clock += o                      (software overhead, per message)
//! receiver: clock  = max(clock, sent_at + L + o + bytes·framing·8/bw)
//! ```
//!
//! which is exactly a LogGP cost with `L = rtt/2`, `o` the per-message
//! software overhead on either side, `g = o` (the sender can inject the next
//! message as soon as it has paid the overhead of the previous one) and
//! `G = framing · 8 / bandwidth` seconds per byte.  [`LogGpParams::between`]
//! exposes this mapping for a host pair.
//!
//! ## How Grid'5000 link specs map to L/o/g/G
//!
//! The `p2pmpi-grid5000` crate builds its topology from the paper's Table 1
//! and figure legends (`p2pmpi_grid5000::sites`), and those published specs
//! are precisely what instantiate the four parameters:
//!
//! * **L** comes from `RTT_TO_NANCY_MS` (halved): e.g. Nancy↔Sophia has an
//!   RTT of 17.167 ms, so `L ≈ 8.58 ms`; two hosts of the same site use the
//!   intra-site RTT of 0.087 ms (`L ≈ 43 µs`), and co-located processes the
//!   loopback RTT.
//! * **o** and **g** are the 35 µs per-message software overhead of the
//!   2008-era Java/TCP stack (`NetworkParams::per_message_overhead`), the
//!   same on every link.
//! * **G** comes from `wan_bandwidth_bps` and the NIC rate: 10 Gbps between
//!   most sites but 1 Gbps on any link touching Bordeaux and 1 Gbps at every
//!   NIC, times the 1.05 protocol-framing factor — so
//!   `G = 1.05 · 8 / min(link, NIC) ≈ 8.4 ns/byte` on a 1 Gbps bottleneck.
//!
//! # Fidelity
//!
//! [`ModelComm`] replays the *identical* schedule and clock arithmetic the
//! executed collectives use (same tree shapes, same per-step send order, the
//! same `SimDuration::from_secs_f64` roundings via
//! `NetworkModel::transfer_time`), so for a fixed sequence of collectives
//! over a fixed placement the modeled per-rank clocks are **equal** to the
//! executed ones — the property test in `tests/model_agreement.rs` pins this
//! for every collective at up to 16 ranks over random placements.  Modeled
//! *kernels* (e.g. `p2pmpi-nas`'s `is_model`) may still diverge slightly
//! where message sizes are data-dependent and the model substitutes a
//! balanced approximation; `perf_report` measures and bounds that divergence.
//!
//! # Choosing a backend
//!
//! [`CollectiveBackend`] selects between the two execution styles;
//! [`crate::runtime::MpiRuntime::with_backend`] records the choice on the
//! runtime and [`crate::runtime::MpiRuntime::model_comm`] builds a
//! [`ModelComm`] sharing the runtime's network and compute models, so the
//! experiment layer can flip a whole sweep from executed to modeled without
//! touching the cost parameters.

use crate::error::Rank;
use crate::placement::Placement;
use crate::stats::CommStats;
use p2pmpi_simgrid::compute::ComputeModel;
use p2pmpi_simgrid::memory::MemoryIntensity;
use p2pmpi_simgrid::network::NetworkModel;
use p2pmpi_simgrid::time::{SimDuration, SimTime};
use p2pmpi_simgrid::topology::HostId;

/// How a job's collectives are costed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CollectiveBackend {
    /// One OS thread per rank, real message passing over channels; the cost
    /// emerges from the point-to-point layer (today's default path).
    #[default]
    Executed,
    /// Analytical LogGP-style prediction on per-rank scalar clocks; no
    /// threads, scales to thousands of ranks.
    Modeled,
}

/// The LogGP parameters of one (src, dst) host pair, derived from the
/// network model (see the module docs for the mapping).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogGpParams {
    /// `L`: one-way wire latency.
    pub latency: SimDuration,
    /// `o`: per-message software overhead (sender side; the receive path
    /// pays the same once more inside the transfer time).
    pub overhead: SimDuration,
    /// `g`: minimum gap between consecutive message injections (equals `o`
    /// under this runtime's cost rule).
    pub gap: SimDuration,
    /// `G`: seconds per payload byte (framing included).
    pub secs_per_byte: f64,
}

impl LogGpParams {
    /// Derives the parameters for messages from `src` to `dst`.
    pub fn between(network: &NetworkModel, src: HostId, dst: HostId) -> LogGpParams {
        let params = network.params();
        let topology = network.topology();
        let overhead = params.per_message_overhead;
        LogGpParams {
            latency: topology.latency(src, dst),
            overhead,
            gap: overhead,
            secs_per_byte: params.framing_factor * 8.0 / topology.bandwidth_bps(src, dst),
        }
    }
}

/// Analytical stand-in for a whole communicator: one virtual clock per rank,
/// advanced by the same schedules and cost rules as the executed collectives.
///
/// Methods mirror [`crate::Comm`]'s collectives but take *byte counts*
/// instead of data (the model never touches payloads).  Per-rank quantities
/// (gather contributions, alltoallv block sizes, compute work) are supplied
/// as closures over the rank index.
pub struct ModelComm {
    hosts: Vec<HostId>,
    residents: Vec<usize>,
    clocks: Vec<SimTime>,
    network: NetworkModel,
    compute: ComputeModel,
    stats: CommStats,
    /// Scratch: per-rank send timestamps within one ring step.
    sent_at: Vec<SimTime>,
}

impl ModelComm {
    /// Builds a model communicator for `placement` over the given cost
    /// models.
    ///
    /// # Panics
    ///
    /// Panics if the placement is invalid or uses replication (replicas only
    /// matter under failure injection, which the analytical model does not
    /// simulate).
    pub fn new(placement: &Placement, network: NetworkModel, compute: ComputeModel) -> ModelComm {
        placement
            .validate()
            .expect("cannot model an invalid placement");
        assert_eq!(
            placement.replication, 1,
            "the analytical model supports unreplicated placements only"
        );
        let n = placement.processes as usize;
        let mut hosts = vec![HostId(0); n];
        for spec in &placement.procs {
            hosts[spec.rank as usize] = spec.host;
        }
        let residents_per_host = placement.residents_per_host();
        let residents = hosts
            .iter()
            .map(|h| residents_per_host[h])
            .collect::<Vec<_>>();
        ModelComm {
            hosts,
            residents,
            clocks: vec![SimTime::ZERO; n],
            network,
            compute,
            stats: CommStats::default(),
            sent_at: vec![SimTime::ZERO; n],
        }
    }

    /// Number of ranks.
    pub fn size(&self) -> u32 {
        self.clocks.len() as u32
    }

    /// The modeled clock of one rank.
    pub fn clock(&self, rank: Rank) -> SimTime {
        self.clocks[rank as usize]
    }

    /// All per-rank clocks.
    pub fn clocks(&self) -> &[SimTime] {
        &self.clocks
    }

    /// The job makespan so far: the largest per-rank clock.
    pub fn makespan(&self) -> SimDuration {
        self.clocks
            .iter()
            .copied()
            .max()
            .unwrap_or(SimTime::ZERO)
            .saturating_since(SimTime::ZERO)
    }

    /// Aggregate modeled traffic and compute counters (what the executed
    /// job's [`CommStats`] would sum to).
    pub fn stats(&self) -> &CommStats {
        &self.stats
    }

    /// One modeled message: the sender pays `o`, the receiver's clock rises
    /// to the arrival time.  Mirrors `Comm::send`/`Comm::accept` exactly.
    #[inline]
    fn message(&mut self, src: usize, dst: usize, bytes: u64) {
        let overhead = self.network.params().per_message_overhead;
        self.clocks[src] += overhead;
        let transfer = self
            .network
            .transfer_time(self.hosts[src], self.hosts[dst], bytes);
        let arrival = self.clocks[src] + transfer;
        self.clocks[dst] = self.clocks[dst].max(arrival);
        self.stats.messages_sent += 1;
        self.stats.messages_received += 1;
        self.stats.bytes_sent += bytes;
        self.stats.bytes_received += bytes;
    }

    /// Charges a compute section to every rank; `ops_of(rank)` gives the
    /// abstract operation count of each rank's share.
    pub fn compute<F>(&mut self, intensity: MemoryIntensity, mut ops_of: F)
    where
        F: FnMut(Rank) -> f64,
    {
        for rank in 0..self.clocks.len() {
            let ops = ops_of(rank as Rank);
            let t =
                self.compute
                    .compute_time(self.hosts[rank], ops, intensity, self.residents[rank]);
            self.clocks[rank] += t;
            self.stats.compute_ops += ops;
            self.stats.compute_time += t;
        }
    }

    /// Advances every rank's clock by `d` (I/O or set-up phases).
    pub fn advance(&mut self, d: SimDuration) {
        for c in &mut self.clocks {
            *c += d;
        }
    }

    /// Binomial-tree broadcast of `bytes` from `root` (mirrors
    /// [`crate::Comm::bcast`]).
    pub fn bcast(&mut self, root: Rank, bytes: u64) {
        let size = self.clocks.len();
        assert!((root as usize) < size, "root {root} outside 0..{size}");
        if size <= 1 {
            return;
        }
        // Process ranks in increasing *relative* order: a rank's parent has a
        // smaller relative index, so its (receive, forward...) program has
        // already run and this rank's clock already reflects the arrival.
        for rel in 0..size {
            let me = (rel + root as usize) % size;
            // Forward to children in the executed send order: masks descend
            // from just below this rank's receive mask (or from the top for
            // the root).
            let mut mask: usize = 1;
            while mask < size && rel & mask == 0 {
                mask <<= 1;
            }
            mask >>= 1;
            while mask > 0 {
                if rel + mask < size {
                    let child = (rel + mask + root as usize) % size;
                    self.message(me, child, bytes);
                }
                mask >>= 1;
            }
        }
    }

    /// Binomial-tree reduction of `bytes` onto `root` (mirrors
    /// [`crate::Comm::reduce`]; the element-wise combine is free, as in the
    /// executed path).
    pub fn reduce(&mut self, root: Rank, bytes: u64) {
        let size = self.clocks.len();
        assert!((root as usize) < size, "root {root} outside 0..{size}");
        if size <= 1 {
            return;
        }
        // Children have larger relative indices: process them first so each
        // rank's clock includes every child contribution before it forwards
        // to its own parent.
        for rel in (1..size).rev() {
            let me = (rel + root as usize) % size;
            let parent_rel = rel & (rel - 1); // clear the lowest set bit
            let parent = (parent_rel + root as usize) % size;
            self.message(me, parent, bytes);
        }
    }

    /// Reduce-to-0 followed by broadcast (mirrors
    /// [`crate::Comm::allreduce`]).
    pub fn allreduce(&mut self, bytes: u64) {
        self.reduce(0, bytes);
        self.bcast(0, bytes);
    }

    /// Empty allreduce (mirrors [`crate::Comm::barrier`]: one `u8`).
    pub fn barrier(&mut self) {
        self.allreduce(1);
    }

    /// Linear gather at `root`; `bytes_of(rank)` is each rank's contribution
    /// (mirrors [`crate::Comm::gather`]).
    pub fn gather<F>(&mut self, root: Rank, mut bytes_of: F)
    where
        F: FnMut(Rank) -> u64,
    {
        let size = self.clocks.len();
        assert!((root as usize) < size, "root {root} outside 0..{size}");
        for src in 0..size {
            if src != root as usize {
                self.message(src, root as usize, bytes_of(src as Rank));
            }
        }
    }

    /// Gather at 0 then broadcast of the concatenation (mirrors
    /// [`crate::Comm::allgather`]).
    pub fn allgather<F>(&mut self, mut bytes_of: F)
    where
        F: FnMut(Rank) -> u64,
    {
        let total: u64 = (0..self.size()).map(&mut bytes_of).sum();
        self.gather(0, bytes_of);
        self.bcast(0, total);
    }

    /// Linear scatter of `block_bytes` per rank from `root` (mirrors
    /// [`crate::Comm::scatter`]).
    pub fn scatter(&mut self, root: Rank, block_bytes: u64) {
        let size = self.clocks.len();
        assert!((root as usize) < size, "root {root} outside 0..{size}");
        for dst in 0..size {
            if dst != root as usize {
                self.message(root as usize, dst, block_bytes);
            }
        }
    }

    /// Ring alltoall of equal `block_bytes` blocks (mirrors
    /// [`crate::Comm::alltoall`]).
    pub fn alltoall(&mut self, block_bytes: u64) {
        self.alltoallv(|_, _| block_bytes);
    }

    /// Ring alltoallv; `bytes(src, dst)` is the block `src` sends to `dst`
    /// (mirrors [`crate::Comm::alltoallv`]).
    pub fn alltoallv<F>(&mut self, mut bytes: F)
    where
        F: FnMut(Rank, Rank) -> u64,
    {
        let size = self.clocks.len();
        if size <= 1 {
            return;
        }
        let overhead = self.network.params().per_message_overhead;
        // Ring schedule: at step s every rank sends to rank+s and then blocks
        // receiving from rank-s.  Two phases per step: all sends are stamped
        // against the pre-step clocks, then every receive takes the max.
        for step in 1..size {
            for (rank, sent) in self.sent_at.iter_mut().enumerate() {
                self.clocks[rank] += overhead;
                *sent = self.clocks[rank];
            }
            for rank in 0..size {
                let src = (rank + size - step) % size;
                let b = bytes(src as Rank, rank as Rank);
                let transfer = self
                    .network
                    .transfer_time(self.hosts[src], self.hosts[rank], b);
                let arrival = self.sent_at[src] + transfer;
                self.clocks[rank] = self.clocks[rank].max(arrival);
                // Each (src → rank) block counts once on each side, as the
                // executed path does.
                self.stats.messages_sent += 1;
                self.stats.messages_received += 1;
                self.stats.bytes_sent += b;
                self.stats.bytes_received += b;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2pmpi_simgrid::topology::{NodeSpec, Topology, TopologyBuilder};
    use std::sync::Arc;

    fn topology() -> Arc<Topology> {
        let mut b = TopologyBuilder::new();
        let s0 = b.add_site("local");
        let s1 = b.add_site("remote");
        b.add_cluster(s0, "l", "cpu", 4, NodeSpec::default());
        b.add_cluster(s1, "r", "cpu", 4, NodeSpec::default());
        b.set_rtt(s0, s1, SimDuration::from_millis(10));
        Arc::new(b.build())
    }

    fn model_for(placement: &Placement, t: &Arc<Topology>) -> ModelComm {
        ModelComm::new(
            placement,
            NetworkModel::new(t.clone()),
            ComputeModel::new(t.clone()),
        )
    }

    #[test]
    fn loggp_params_reflect_the_link() {
        let t = topology();
        let m = NetworkModel::new(t.clone());
        let l0 = t.host_by_name("l-0").unwrap().id;
        let r0 = t.host_by_name("r-0").unwrap().id;
        let local = LogGpParams::between(&m, l0, l0);
        let wan = LogGpParams::between(&m, l0, r0);
        assert_eq!(wan.latency, SimDuration::from_millis(5));
        assert!(local.latency < wan.latency);
        assert_eq!(wan.overhead, m.params().per_message_overhead);
        assert_eq!(wan.gap, wan.overhead);
        // 1 Gbps NIC bottleneck with 1.05 framing: ~8.4 ns per byte.
        assert!((wan.secs_per_byte - 8.4e-9).abs() < 0.1e-9);
        // Loopback is modelled faster than the NIC.
        assert!(local.secs_per_byte < wan.secs_per_byte);
    }

    #[test]
    fn single_rank_collectives_are_free() {
        let t = topology();
        let p = Placement::co_located(1, t.hosts()[0].id);
        let mut m = model_for(&p, &t);
        m.bcast(0, 1 << 20);
        m.reduce(0, 1 << 20);
        m.allreduce(1 << 20);
        m.alltoall(1 << 20);
        assert_eq!(m.makespan(), SimDuration::ZERO);
    }

    #[test]
    fn bcast_cost_grows_logarithmically() {
        let t = topology();
        let hosts: Vec<_> = t.hosts().iter().map(|h| h.id).take(4).collect();
        // 2 ranks: one message; 4 ranks: two latency steps on the critical
        // path (binomial tree), not three.
        let mut two = model_for(&Placement::one_per_host(&hosts[..2]), &t);
        two.bcast(0, 64);
        let mut four = model_for(&Placement::one_per_host(&hosts), &t);
        four.bcast(0, 64);
        let t2 = two.makespan();
        let t4 = four.makespan();
        assert!(t4 > t2);
        assert!(
            t4 < t2 * 3,
            "4-rank binomial bcast {t4} must cost ~2 latency steps, not 3 ({t2} each)"
        );
        assert_eq!(four.stats().messages_sent, 3);
    }

    #[test]
    fn cross_site_collectives_cost_more() {
        let t = topology();
        let local: Vec<_> = t.hosts().iter().take(4).map(|h| h.id).collect();
        let mixed: Vec<_> = t.hosts().iter().skip(2).take(4).map(|h| h.id).collect();
        let mut a = model_for(&Placement::one_per_host(&local), &t);
        a.allreduce(1024);
        let mut b = model_for(&Placement::one_per_host(&mixed), &t);
        b.allreduce(1024);
        assert!(b.makespan() > a.makespan() * 10);
    }

    #[test]
    fn compute_respects_residents() {
        let t = topology();
        let host = t.hosts()[0].id;
        let spread: Vec<_> = t.hosts().iter().take(4).map(|h| h.id).collect();
        let mut packed = model_for(&Placement::co_located(4, host), &t);
        packed.compute(MemoryIntensity::MEMORY_BOUND, |_| 1e9);
        let mut spread_m = model_for(&Placement::one_per_host(&spread), &t);
        spread_m.compute(MemoryIntensity::MEMORY_BOUND, |_| 1e9);
        assert!(packed.makespan() > spread_m.makespan());
        assert_eq!(packed.stats().compute_ops, 4e9);
    }

    #[test]
    fn alltoall_counts_ring_messages() {
        let t = topology();
        let hosts: Vec<_> = t.hosts().iter().take(4).map(|h| h.id).collect();
        let mut m = model_for(&Placement::one_per_host(&hosts), &t);
        m.alltoall(256);
        // n(n-1) messages of 256 bytes.
        assert_eq!(m.stats().messages_sent, 12);
        assert_eq!(m.stats().bytes_sent, 12 * 256);
        assert!(m.makespan() > SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "unreplicated")]
    fn replicated_placement_is_rejected() {
        let t = topology();
        let hosts: Vec<_> = t.hosts().iter().take(4).map(|h| h.id).collect();
        let p = Placement::replicated_round_robin(2, 2, &hosts);
        model_for(&p, &t);
    }
}
