//! # p2pmpi-mpi
//!
//! The MPJ-like communication library of the `p2pmpi-rs` reproduction: a
//! message-passing runtime whose processes are OS threads, whose transport is
//! in-process channels, and whose *time* is virtual — charged from the
//! `p2pmpi-simgrid` network, compute and memory-contention models so that the
//! relative cost of *spread* vs *concentrate* placements (Figure 4 of the
//! paper) can be measured on a laptop.
//!
//! ## Pieces
//!
//! * [`datatype`] — typed buffers and reduction operators.
//! * [`placement`] — which host runs which `(rank, replica)` instance;
//!   convertible from a `p2pmpi-core` [`p2pmpi_core::Allocation`].
//! * [`comm`] — the per-process communicator: `send`/`recv`, `compute`,
//!   logical clock.
//! * [`collectives`] — barrier, bcast, reduce, allreduce, gather, allgather,
//!   scatter, alltoall, alltoallv.
//! * [`registry`] — replica liveness and deterministic failure injection
//!   (the paper's replication-based fault tolerance).
//! * [`runtime`] — thread-per-process job execution and makespan
//!   measurement.
//! * [`model`] — LogGP-style analytical prediction of the collectives'
//!   virtual-time cost, for sweeps past the thread-per-rank scale
//!   ([`model::CollectiveBackend`] selects executed vs modeled), plus the
//!   incremental placement evaluator ([`model::PlacementCost`]) the
//!   placement search runs on.
//!
//! ## Example
//!
//! ```
//! use p2pmpi_mpi::prelude::*;
//! use p2pmpi_simgrid::topology::{NodeSpec, TopologyBuilder};
//! use std::sync::Arc;
//!
//! let mut b = TopologyBuilder::new();
//! let site = b.add_site("local");
//! b.add_cluster(site, "c", "cpu", 4, NodeSpec::default());
//! let topology = Arc::new(b.build());
//! let hosts: Vec<_> = topology.hosts().iter().map(|h| h.id).collect();
//!
//! let runtime = MpiRuntime::new(topology);
//! let placement = Placement::one_per_host(&hosts);
//! let result = runtime.run(&placement, |comm| {
//!     let sum = comm.allreduce(ReduceOp::Sum, &[comm.rank() as i64])?;
//!     Ok(sum[0])
//! });
//! assert!(result.all_ranks_completed());
//! assert_eq!(*result.result_of(0).unwrap(), 0 + 1 + 2 + 3);
//! ```

#![warn(missing_docs)]

pub mod collectives;
pub mod comm;
pub mod datatype;
pub mod envelope;
pub mod error;
pub mod model;
pub mod placement;
pub mod registry;
pub mod runtime;
pub mod stats;

pub use comm::Comm;
pub use datatype::{Datatype, ReduceOp, Reducible};
pub use error::{MpiError, MpiResult, Rank, Tag};
pub use model::{CollectiveBackend, LogGpParams, ModelComm};
pub use placement::{Placement, PlacementError, ProcSpec};
pub use registry::{FailurePlan, KillSpec, Registry};
pub use runtime::{InstanceOutcome, JobResult, MpiRuntime};
pub use stats::CommStats;

/// Commonly used items, for glob imports in kernels and examples.
pub mod prelude {
    pub use crate::comm::Comm;
    pub use crate::datatype::{Datatype, ReduceOp, Reducible};
    pub use crate::error::{MpiError, MpiResult, Rank, Tag};
    pub use crate::model::{CollectiveBackend, ModelComm};
    pub use crate::placement::Placement;
    pub use crate::registry::FailurePlan;
    pub use crate::runtime::{JobResult, MpiRuntime};
    pub use p2pmpi_simgrid::memory::MemoryIntensity;
}
