//! Error types of the communication library.

use std::fmt;

/// MPI process instances are addressed by logical rank and replica index.
pub type Rank = u32;

/// Message tags, as in MPI.
pub type Tag = u16;

/// Errors surfaced to user code running inside an MPI process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MpiError {
    /// This process instance was killed by the failure-injection plan; the
    /// kernel should unwind (`?`) so the replica stops participating.
    ProcessFailed,
    /// A rank outside `0..size` was addressed.
    InvalidRank {
        /// The offending rank.
        rank: Rank,
        /// The communicator size.
        size: u32,
    },
    /// The channel to a destination process is gone (its thread ended
    /// without replicas to take over).
    PeerUnreachable {
        /// The destination rank.
        rank: Rank,
    },
    /// A collective was called with inconsistent arguments (e.g. mismatched
    /// counts in `alltoallv`).
    CollectiveMismatch(String),
}

impl fmt::Display for MpiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MpiError::ProcessFailed => write!(f, "this process instance has been failed"),
            MpiError::InvalidRank { rank, size } => {
                write!(f, "rank {rank} is outside the communicator (size {size})")
            }
            MpiError::PeerUnreachable { rank } => {
                write!(f, "no live replica of rank {rank} is reachable")
            }
            MpiError::CollectiveMismatch(msg) => write!(f, "collective mismatch: {msg}"),
        }
    }
}

impl std::error::Error for MpiError {}

/// Result alias used throughout the library.
pub type MpiResult<T> = Result<T, MpiError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display() {
        assert!(MpiError::ProcessFailed.to_string().contains("failed"));
        assert!(MpiError::InvalidRank { rank: 9, size: 4 }
            .to_string()
            .contains("rank 9"));
        assert!(MpiError::PeerUnreachable { rank: 2 }
            .to_string()
            .contains("rank 2"));
        assert!(MpiError::CollectiveMismatch("bad counts".into())
            .to_string()
            .contains("bad counts"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(MpiError::ProcessFailed, MpiError::ProcessFailed);
        assert_ne!(
            MpiError::ProcessFailed,
            MpiError::PeerUnreachable { rank: 0 }
        );
    }
}
