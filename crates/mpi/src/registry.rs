//! Shared run-time registry: replica liveness and failure injection.
//!
//! P2P-MPI's fault tolerance replicates each logical process `r` times; the
//! communication library keeps the copies consistent and the application
//! survives as long as one copy of each rank remains (Section 3.2 and [11]).
//! The registry is the shared, thread-safe record of which instances have
//! been failed, and the [`FailurePlan`] injects those failures
//! deterministically (after a given number of MPI operations on a given
//! instance).

use crate::error::Rank;
use std::sync::atomic::{AtomicBool, Ordering};

/// When to kill one process instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KillSpec {
    /// The rank to kill.
    pub rank: Rank,
    /// The replica index to kill.
    pub replica: u32,
    /// The instance fails when it is about to execute its
    /// `after_ops`-th MPI operation (0 = before doing anything).
    pub after_ops: u64,
}

/// A deterministic failure-injection plan.
#[derive(Debug, Clone, Default)]
pub struct FailurePlan {
    kills: Vec<KillSpec>,
}

impl FailurePlan {
    /// No failures.
    pub fn none() -> Self {
        FailurePlan::default()
    }

    /// Adds a kill.
    pub fn kill(mut self, rank: Rank, replica: u32, after_ops: u64) -> Self {
        self.kills.push(KillSpec {
            rank,
            replica,
            after_ops,
        });
        self
    }

    /// The op threshold at which `(rank, replica)` must fail, if any.
    pub fn threshold(&self, rank: Rank, replica: u32) -> Option<u64> {
        self.kills
            .iter()
            .filter(|k| k.rank == rank && k.replica == replica)
            .map(|k| k.after_ops)
            .min()
    }

    /// Number of scheduled kills.
    pub fn len(&self) -> usize {
        self.kills.len()
    }

    /// True if the plan kills nothing.
    pub fn is_empty(&self) -> bool {
        self.kills.is_empty()
    }
}

/// Thread-shared liveness table.
pub struct Registry {
    replication: u32,
    failed: Vec<AtomicBool>,
}

impl Registry {
    /// Creates a registry for `n` ranks with `r` replicas, everyone alive.
    pub fn new(processes: u32, replication: u32) -> Self {
        let count = (processes * replication) as usize;
        Registry {
            replication,
            failed: (0..count).map(|_| AtomicBool::new(false)).collect(),
        }
    }

    fn index(&self, rank: Rank, replica: u32) -> usize {
        (rank * self.replication + replica) as usize
    }

    /// Marks an instance as failed.
    pub fn mark_failed(&self, rank: Rank, replica: u32) {
        self.failed[self.index(rank, replica)].store(true, Ordering::SeqCst);
    }

    /// True if the instance has been failed.
    pub fn is_failed(&self, rank: Rank, replica: u32) -> bool {
        self.failed[self.index(rank, replica)].load(Ordering::SeqCst)
    }

    /// The lowest-index replica of `rank` that is still alive, if any.
    pub fn primary_replica(&self, rank: Rank) -> Option<u32> {
        (0..self.replication).find(|&rep| !self.is_failed(rank, rep))
    }

    /// True if `(rank, replica)` is currently the lowest-index alive copy.
    pub fn is_primary(&self, rank: Rank, replica: u32) -> bool {
        self.primary_replica(rank) == Some(replica)
    }

    /// Number of alive replicas of `rank`.
    pub fn alive_replicas(&self, rank: Rank) -> u32 {
        (0..self.replication)
            .filter(|&rep| !self.is_failed(rank, rep))
            .count() as u32
    }

    /// True if every rank still has at least one alive replica — the
    /// condition under which P2P-MPI guarantees the application survives.
    pub fn application_alive(&self, processes: u32) -> bool {
        (0..processes).all(|rank| self.primary_replica(rank).is_some())
    }

    /// All failed `(rank, replica)` pairs.
    pub fn failed_instances(&self, processes: u32) -> Vec<(Rank, u32)> {
        let mut out = Vec::new();
        for rank in 0..processes {
            for rep in 0..self.replication {
                if self.is_failed(rank, rep) {
                    out.push((rank, rep));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_thresholds() {
        let plan = FailurePlan::none()
            .kill(1, 0, 10)
            .kill(1, 0, 5)
            .kill(2, 1, 0);
        assert_eq!(plan.threshold(1, 0), Some(5));
        assert_eq!(plan.threshold(2, 1), Some(0));
        assert_eq!(plan.threshold(0, 0), None);
        assert_eq!(plan.len(), 3);
        assert!(!plan.is_empty());
        assert!(FailurePlan::none().is_empty());
    }

    #[test]
    fn registry_tracks_primaries() {
        let reg = Registry::new(3, 2);
        assert!(reg.is_primary(1, 0));
        assert!(!reg.is_primary(1, 1));
        assert_eq!(reg.alive_replicas(1), 2);
        reg.mark_failed(1, 0);
        assert!(reg.is_failed(1, 0));
        assert_eq!(reg.primary_replica(1), Some(1));
        assert!(reg.is_primary(1, 1));
        assert_eq!(reg.alive_replicas(1), 1);
        assert!(reg.application_alive(3));
        reg.mark_failed(1, 1);
        assert_eq!(reg.primary_replica(1), None);
        assert!(!reg.application_alive(3));
        assert_eq!(reg.failed_instances(3), vec![(1, 0), (1, 1)]);
    }

    #[test]
    fn unreplicated_registry() {
        let reg = Registry::new(2, 1);
        assert!(reg.application_alive(2));
        reg.mark_failed(0, 0);
        assert!(!reg.application_alive(2));
        assert_eq!(reg.failed_instances(2), vec![(0, 0)]);
    }
}
