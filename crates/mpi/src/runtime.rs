//! The MPI job runtime: one OS thread per process instance, virtual-time
//! accounting, replication and failure injection.

use crate::comm::{Comm, CommConfig, DEFAULT_RECV_TIMEOUT};
use crate::envelope::Router;
use crate::error::{MpiError, MpiResult, Rank};
use crate::model::{CollectiveBackend, ModelComm};
use crate::placement::Placement;
use crate::registry::{FailurePlan, Registry};
use crate::stats::CommStats;
use p2pmpi_simgrid::compute::ComputeModel;
use p2pmpi_simgrid::memory::MemoryContentionModel;
use p2pmpi_simgrid::network::NetworkModel;
use p2pmpi_simgrid::time::{SimDuration, SimTime};
use p2pmpi_simgrid::topology::Topology;
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Duration;

/// Outcome of one process instance.
#[derive(Debug)]
pub struct InstanceOutcome<T> {
    /// Logical rank.
    pub rank: Rank,
    /// Replica index.
    pub replica: u32,
    /// What the kernel returned.
    pub result: MpiResult<T>,
    /// The instance's final logical clock.
    pub clock: SimTime,
    /// The instance's communication statistics.
    pub stats: CommStats,
}

/// Result of running one MPI job.
#[derive(Debug)]
pub struct JobResult<T> {
    /// Number of logical ranks.
    pub processes: u32,
    /// Replication degree.
    pub replication: u32,
    /// The job's virtual makespan: the largest final clock among instances
    /// that completed successfully.
    pub makespan: SimDuration,
    /// Every instance's outcome, indexed by `rank * r + replica`.
    pub instances: Vec<InstanceOutcome<T>>,
    /// Aggregated communication statistics over all instances.
    pub stats: CommStats,
}

impl<T> JobResult<T> {
    /// The result produced by the lowest-index replica of `rank` that
    /// completed successfully (the value the application observes).
    pub fn result_of(&self, rank: Rank) -> Option<&T> {
        self.instances
            .iter()
            .filter(|i| i.rank == rank)
            .find_map(|i| i.result.as_ref().ok())
    }

    /// True if every rank produced a result (possibly through a surviving
    /// replica).
    pub fn all_ranks_completed(&self) -> bool {
        (0..self.processes).all(|rank| self.result_of(rank).is_some())
    }

    /// Instances that ended in failure (injected or otherwise), as
    /// `(rank, replica, error)`.
    pub fn failures(&self) -> Vec<(Rank, u32, MpiError)> {
        self.instances
            .iter()
            .filter_map(|i| {
                i.result
                    .as_ref()
                    .err()
                    .map(|e| (i.rank, i.replica, e.clone()))
            })
            .collect()
    }

    /// Number of instances that completed successfully.
    pub fn completed_instances(&self) -> usize {
        self.instances.iter().filter(|i| i.result.is_ok()).count()
    }
}

/// Runs MPI jobs over a topology's cost models.
#[derive(Clone)]
pub struct MpiRuntime {
    network: NetworkModel,
    compute: ComputeModel,
    recv_timeout: Duration,
    stack_size: usize,
    backend: CollectiveBackend,
}

impl MpiRuntime {
    /// Creates a runtime with default network/compute/contention models.
    pub fn new(topology: Arc<Topology>) -> Self {
        MpiRuntime {
            network: NetworkModel::new(topology.clone()),
            compute: ComputeModel::new(topology),
            recv_timeout: DEFAULT_RECV_TIMEOUT,
            stack_size: 1 << 20,
            backend: CollectiveBackend::Executed,
        }
    }

    /// Creates a runtime with explicit cost models.
    pub fn with_models(network: NetworkModel, compute: ComputeModel) -> Self {
        MpiRuntime {
            network,
            compute,
            recv_timeout: DEFAULT_RECV_TIMEOUT,
            stack_size: 1 << 20,
            backend: CollectiveBackend::Executed,
        }
    }

    /// Selects how jobs submitted to this runtime should cost their
    /// collectives: executed thread-per-rank (the default) or the analytical
    /// model.  The experiment layer consults [`MpiRuntime::backend`] and,
    /// for [`CollectiveBackend::Modeled`], drives a
    /// [`MpiRuntime::model_comm`] instead of calling [`MpiRuntime::run`] —
    /// closure kernels cannot be modeled, so `run` panics on a runtime whose
    /// backend is `Modeled` rather than silently spawning threads.
    pub fn with_backend(mut self, backend: CollectiveBackend) -> Self {
        self.backend = backend;
        self
    }

    /// The collective backend selected for this runtime.
    pub fn backend(&self) -> CollectiveBackend {
        self.backend
    }

    /// Builds an analytical model communicator for `placement` sharing this
    /// runtime's network and compute models, so modeled and executed runs of
    /// the same job are costed from identical parameters.
    pub fn model_comm(&self, placement: &Placement) -> ModelComm {
        ModelComm::new(placement, self.network.clone(), self.compute.clone())
    }

    /// Replaces the memory-contention model (ablation experiments).
    pub fn with_contention(mut self, contention: MemoryContentionModel) -> Self {
        let topology = self.compute.topology().clone();
        self.compute = ComputeModel::with_contention(topology, contention);
        self
    }

    /// Overrides the real-time receive timeout used to detect that every
    /// replica of a sender is gone.
    pub fn with_recv_timeout(mut self, timeout: Duration) -> Self {
        self.recv_timeout = timeout;
        self
    }

    /// The network model in use.
    pub fn network(&self) -> &NetworkModel {
        &self.network
    }

    /// The compute model in use.
    pub fn compute_model(&self) -> &ComputeModel {
        &self.compute
    }

    /// Runs `kernel` as an MPI job over `placement` without failures.
    pub fn run<T, F>(&self, placement: &Placement, kernel: F) -> JobResult<T>
    where
        T: Send,
        F: Fn(&mut Comm) -> MpiResult<T> + Send + Sync,
    {
        self.run_with_failures(placement, &FailurePlan::none(), kernel)
    }

    /// Runs `kernel` as an MPI job over `placement`, injecting the failures
    /// described by `plan`.
    ///
    /// # Panics
    ///
    /// Panics if the placement is structurally invalid (use
    /// [`Placement::validate`] to check beforehand when the placement comes
    /// from untrusted input).
    pub fn run_with_failures<T, F>(
        &self,
        placement: &Placement,
        plan: &FailurePlan,
        kernel: F,
    ) -> JobResult<T>
    where
        T: Send,
        F: Fn(&mut Comm) -> MpiResult<T> + Send + Sync,
    {
        assert_eq!(
            self.backend,
            CollectiveBackend::Executed,
            "this runtime selected the analytical backend; closure kernels cannot be modeled — \
             drive a `model_comm(placement)` instead of calling `run`"
        );
        placement
            .validate()
            .expect("cannot run an MPI job on an invalid placement");
        let n = placement.processes;
        let r = placement.replication;
        let total = placement.total_instances();
        let (router, receivers) = Router::new(placement);
        let router = Arc::new(router);
        let registry = Arc::new(Registry::new(n, r));
        let residents = placement.residents_per_host();

        let outcomes: Mutex<Vec<Option<InstanceOutcome<T>>>> =
            Mutex::new((0..total).map(|_| None).collect());
        let mut receivers: Vec<Option<_>> = receivers.into_iter().map(Some).collect();

        std::thread::scope(|scope| {
            for spec in &placement.procs {
                let idx = placement.instance_index(spec.rank, spec.replica);
                let rx = receivers[idx].take().expect("each instance spawned once");
                let config = CommConfig {
                    rank: spec.rank,
                    replica: spec.replica,
                    size: n,
                    replication: r,
                    host: spec.host,
                    residents: residents[&spec.host],
                    network: self.network.clone(),
                    compute: self.compute.clone(),
                    router: router.clone(),
                    registry: registry.clone(),
                    rx,
                    fail_after: plan.threshold(spec.rank, spec.replica),
                    recv_timeout: self.recv_timeout,
                };
                let kernel = &kernel;
                let outcomes = &outcomes;
                std::thread::Builder::new()
                    .name(format!("mpi-{}.{}", spec.rank, spec.replica))
                    .stack_size(self.stack_size)
                    .spawn_scoped(scope, move || {
                        let mut comm = Comm::new(config);
                        let result = kernel(&mut comm);
                        let outcome = InstanceOutcome {
                            rank: comm.rank(),
                            replica: comm.replica(),
                            result,
                            clock: comm.clock(),
                            stats: comm.stats().clone(),
                        };
                        outcomes.lock()[idx] = Some(outcome);
                    })
                    .expect("failed to spawn an MPI process thread");
            }
        });

        let instances: Vec<InstanceOutcome<T>> = outcomes
            .into_inner()
            .into_iter()
            .map(|o| o.expect("every instance records an outcome"))
            .collect();
        let makespan = instances
            .iter()
            .filter(|i| i.result.is_ok())
            .map(|i| i.clock)
            .max()
            .unwrap_or(SimTime::ZERO)
            .saturating_since(SimTime::ZERO);
        let mut stats = CommStats::default();
        for i in &instances {
            stats.merge(&i.stats);
        }
        JobResult {
            processes: n,
            replication: r,
            makespan,
            instances,
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datatype::ReduceOp;
    use crate::model::CollectiveProgram;
    use p2pmpi_simgrid::memory::MemoryIntensity;
    use p2pmpi_simgrid::topology::{HostId, NodeSpec, TopologyBuilder};

    fn topology(hosts_per_site: usize, cores: usize) -> Arc<Topology> {
        let mut b = TopologyBuilder::new();
        let s0 = b.add_site("local");
        let s1 = b.add_site("remote");
        b.add_cluster(
            s0,
            "l",
            "cpu",
            hosts_per_site,
            NodeSpec {
                cores,
                ..NodeSpec::default()
            },
        );
        b.add_cluster(
            s1,
            "r",
            "cpu",
            hosts_per_site,
            NodeSpec {
                cores,
                ..NodeSpec::default()
            },
        );
        b.set_rtt(s0, s1, p2pmpi_simgrid::time::SimDuration::from_millis(10));
        Arc::new(b.build())
    }

    fn local_hosts(t: &Topology, count: usize) -> Vec<HostId> {
        t.hosts_at_site(t.site_by_name("local").unwrap().id)
            .take(count)
            .map(|h| h.id)
            .collect()
    }

    #[test]
    fn ring_send_recv_passes_a_token() {
        let t = topology(4, 2);
        let rt = MpiRuntime::new(t.clone());
        let placement = Placement::one_per_host(&local_hosts(&t, 4));
        let result = rt.run(&placement, |comm| {
            let size = comm.size();
            let rank = comm.rank();
            let next = (rank + 1) % size;
            let prev = (rank + size - 1) % size;
            if rank == 0 {
                comm.send(next, 1, &[42i32])?;
                let token = comm.recv::<i32>(prev, 1)?;
                Ok(token[0])
            } else {
                let token = comm.recv::<i32>(prev, 1)?;
                comm.send(next, 1, &[token[0] + 1])?;
                Ok(token[0])
            }
        });
        assert!(result.all_ranks_completed());
        // The token accumulates one increment per hop.
        assert_eq!(*result.result_of(0).unwrap(), 42 + 3);
        assert_eq!(*result.result_of(1).unwrap(), 42);
        assert_eq!(*result.result_of(3).unwrap(), 44);
        assert!(result.makespan > SimDuration::ZERO);
        assert_eq!(result.stats.messages_sent, 4);
        assert_eq!(result.stats.messages_received, 4);
    }

    #[test]
    fn allreduce_sums_ranks() {
        let t = topology(4, 2);
        let rt = MpiRuntime::new(t.clone());
        let placement = Placement::one_per_host(&local_hosts(&t, 4));
        let result = rt.run(&placement, |comm| {
            let sum = comm.allreduce(ReduceOp::Sum, &[comm.rank() as i64, 1])?;
            Ok(sum)
        });
        assert!(result.all_ranks_completed());
        for rank in 0..4 {
            assert_eq!(result.result_of(rank).unwrap(), &vec![6, 4]);
        }
    }

    #[test]
    fn collectives_cover_bcast_gather_scatter_alltoall() {
        let t = topology(4, 4);
        let rt = MpiRuntime::new(t.clone());
        let placement = Placement::one_per_host(&local_hosts(&t, 4));
        let result = rt.run(&placement, |comm| {
            let rank = comm.rank();
            let size = comm.size();
            // Broadcast.
            let seed = if rank == 0 { vec![7i32, 8, 9] } else { vec![] };
            let b = comm.bcast(0, seed)?;
            assert_eq!(b, vec![7, 8, 9]);
            // Scatter: rank i receives [i].
            let scatter_src: Vec<i32> = if rank == 1 {
                (0..size as i32).collect()
            } else {
                vec![]
            };
            let mine = comm.scatter(1, &scatter_src, 1)?;
            assert_eq!(mine, vec![rank as i32]);
            // Gather the scattered values back at rank 2.
            let gathered = comm.gather(2, &mine)?;
            if rank == 2 {
                assert_eq!(gathered.unwrap(), (0..size as i32).collect::<Vec<_>>());
            } else {
                assert!(gathered.is_none());
            }
            // Allgather.
            let all = comm.allgather(&[rank as i32])?;
            assert_eq!(all, (0..size as i32).collect::<Vec<_>>());
            // Alltoall: rank i sends value 10*i + j to rank j.
            let send: Vec<i32> = (0..size as i32).map(|j| 10 * rank as i32 + j).collect();
            let recv = comm.alltoall(&send)?;
            let expect: Vec<i32> = (0..size as i32).map(|i| 10 * i + rank as i32).collect();
            assert_eq!(recv, expect);
            // Alltoallv with variable sizes: rank i sends i+j elements to j.
            let blocks: Vec<Vec<i64>> = (0..size)
                .map(|j| vec![rank as i64; (rank + j) as usize])
                .collect();
            let (vrecv, vcounts) = comm.alltoallv(&blocks)?;
            let mut offset = 0;
            for (src, &count) in vcounts.iter().enumerate() {
                assert_eq!(count, src + rank as usize);
                assert!(vrecv[offset..offset + count]
                    .iter()
                    .all(|&x| x == src as i64));
                offset += count;
            }
            assert_eq!(offset, vrecv.len());
            // Reduce with Max at root 3.
            let m = comm.reduce(3, ReduceOp::Max, &[rank as i64 * 10])?;
            if rank == 3 {
                assert_eq!(m.unwrap(), vec![30]);
            }
            comm.barrier()?;
            Ok(rank)
        });
        assert!(result.all_ranks_completed(), "{:?}", result.failures());
    }

    #[test]
    fn remote_placement_takes_longer_than_local() {
        let t = topology(4, 4);
        let rt = MpiRuntime::new(t.clone());
        let local = local_hosts(&t, 2);
        let mut split = local_hosts(&t, 1);
        split.push(
            t.hosts_at_site(t.site_by_name("remote").unwrap().id)
                .next()
                .unwrap()
                .id,
        );
        let kernel = |comm: &mut Comm| {
            for _ in 0..10 {
                comm.allreduce(ReduceOp::Sum, &[1i64])?;
            }
            Ok(())
        };
        let local_result = rt.run(&Placement::one_per_host(&local), kernel);
        let split_result = rt.run(&Placement::one_per_host(&split), kernel);
        assert!(local_result.all_ranks_completed());
        assert!(split_result.all_ranks_completed());
        assert!(
            split_result.makespan > local_result.makespan * 5,
            "cross-site {} should dwarf local {}",
            split_result.makespan,
            local_result.makespan
        );
    }

    #[test]
    fn colocation_slows_memory_bound_compute() {
        let t = topology(4, 4);
        let rt = MpiRuntime::new(t.clone());
        let host = local_hosts(&t, 1)[0];
        let spread_hosts = local_hosts(&t, 4);
        let kernel = |comm: &mut Comm| {
            comm.compute(1e8, MemoryIntensity::MEMORY_BOUND)?;
            comm.barrier()?;
            Ok(())
        };
        let concentrated = rt.run(&Placement::co_located(4, host), kernel);
        let spread = rt.run(&Placement::one_per_host(&spread_hosts), kernel);
        assert!(concentrated.all_ranks_completed());
        assert!(spread.all_ranks_completed());
        // Intra-host messaging is cheaper but the memory contention dominates
        // for a memory-bound kernel of this size.
        assert!(concentrated.makespan > spread.makespan);
    }

    #[test]
    fn replication_masks_a_failure() {
        let t = topology(4, 2);
        let rt = MpiRuntime::new(t.clone()).with_recv_timeout(Duration::from_secs(5));
        let hosts = local_hosts(&t, 4);
        let placement = Placement::replicated_round_robin(2, 2, &hosts);
        // Kill replica 0 of rank 1 before it does anything.
        let plan = FailurePlan::none().kill(1, 0, 0);
        let result = rt.run_with_failures(&placement, &plan, |comm| {
            // A short ping-pong between ranks 0 and 1, repeated.
            let me = comm.rank();
            let peer = 1 - me;
            let mut last = 0i32;
            for i in 0..5 {
                if me == 0 {
                    comm.send(peer, 7, &[i])?;
                    last = comm.recv::<i32>(peer, 7)?[0];
                } else {
                    last = comm.recv::<i32>(peer, 7)?[0];
                    comm.send(peer, 7, &[last + 1])?;
                }
            }
            Ok(last)
        });
        // Rank 1's surviving replica produced the result; the job completed.
        assert!(result.all_ranks_completed(), "{:?}", result.failures());
        assert_eq!(result.failures().len(), 1);
        assert_eq!(result.failures()[0].0, 1);
        assert_eq!(*result.result_of(0).unwrap(), 5);
    }

    #[test]
    fn unreplicated_failure_is_reported() {
        let t = topology(2, 2);
        let rt = MpiRuntime::new(t.clone()).with_recv_timeout(Duration::from_millis(300));
        let placement = Placement::one_per_host(&local_hosts(&t, 2));
        let plan = FailurePlan::none().kill(1, 0, 0);
        let result = rt.run_with_failures(&placement, &plan, |comm| {
            if comm.rank() == 0 {
                // Rank 1 is dead; this receive must eventually give up.
                match comm.recv::<i32>(1, 3) {
                    Err(MpiError::PeerUnreachable { rank: 1 }) => Ok(-1),
                    other => panic!("expected unreachable peer, got {other:?}"),
                }
            } else {
                comm.compute(1.0, MemoryIntensity::NONE)?;
                Ok(0)
            }
        });
        assert_eq!(*result.result_of(0).unwrap(), -1);
        assert!(!result.all_ranks_completed());
        assert_eq!(result.completed_instances(), 1);
    }

    #[test]
    fn makespan_is_deterministic_across_runs() {
        let t = topology(4, 2);
        let rt = MpiRuntime::new(t.clone());
        let placement = Placement::round_robin(8, &local_hosts(&t, 4));
        let kernel = |comm: &mut Comm| {
            comm.compute(1e6 * (comm.rank() as f64 + 1.0), MemoryIntensity::CPU_BOUND)?;
            comm.allreduce(ReduceOp::Sum, &[comm.rank() as i64])?;
            comm.alltoall(&vec![comm.rank() as i32; comm.size() as usize])?;
            Ok(())
        };
        let a = rt.run(&placement, kernel);
        let b = rt.run(&placement, kernel);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn modeled_clocks_match_executed_clocks_exactly() {
        // The fidelity contract of the analytical backend: for a fixed
        // sequence of collectives over a fixed placement, the model predicts
        // every rank's final clock exactly (see mpi::model docs).
        let t = topology(4, 4);
        let rt = MpiRuntime::new(t.clone());
        assert_eq!(rt.backend(), CollectiveBackend::Executed);
        let mut hosts = local_hosts(&t, 3);
        hosts.push(
            t.hosts_at_site(t.site_by_name("remote").unwrap().id)
                .next()
                .unwrap()
                .id,
        );
        let placement = Placement::round_robin(6, &hosts);

        let executed = rt.run(&placement, |comm| {
            comm.compute(1e7 * (comm.rank() as f64 + 1.0), MemoryIntensity::CPU_BOUND)?;
            comm.bcast(2, vec![0u8; 1000])?;
            comm.allreduce(ReduceOp::Sum, &[comm.rank() as i64; 8])?;
            comm.alltoall(&[comm.rank() as i32; 12])?;
            let blocks: Vec<Vec<u32>> = (0..comm.size())
                .map(|d| vec![0u32; (comm.rank() + 2 * d) as usize])
                .collect();
            comm.alltoallv(&blocks)?;
            comm.gather(1, &vec![0f64; comm.rank() as usize + 1])?;
            comm.scatter(0, &vec![0u64; 5 * comm.size() as usize], 5)?;
            comm.barrier()?;
            Ok(())
        });
        assert!(executed.all_ranks_completed());

        let modeled_rt = rt.clone().with_backend(CollectiveBackend::Modeled);
        assert_eq!(modeled_rt.backend(), CollectiveBackend::Modeled);
        let mut model = modeled_rt.model_comm(&placement);
        model.compute(MemoryIntensity::CPU_BOUND, |rank| 1e7 * (rank as f64 + 1.0));
        model.bcast(2, 1000);
        model.allreduce(8 * 8);
        model.alltoall(2 * 4); // 12 i32 over 6 ranks: 2-element blocks
        model.alltoallv(|src, dst| (src + 2 * dst) as u64 * 4);
        model.gather(1, |rank| (rank as u64 + 1) * 8);
        model.scatter(0, 5 * 8);
        model.barrier();

        for rank in 0..6u32 {
            let exec_clock = executed
                .instances
                .iter()
                .find(|i| i.rank == rank)
                .unwrap()
                .clock;
            assert_eq!(
                model.clock(rank),
                exec_clock,
                "rank {rank}: modeled clock must equal the executed clock"
            );
        }
        assert_eq!(model.makespan(), executed.makespan);
        assert_eq!(model.stats().messages_sent, executed.stats.messages_sent);
        assert_eq!(model.stats().bytes_sent, executed.stats.bytes_sent);
    }

    #[test]
    #[should_panic(expected = "cannot be modeled")]
    fn running_a_closure_kernel_on_a_modeled_runtime_panics() {
        let t = topology(2, 2);
        let rt = MpiRuntime::new(t.clone()).with_backend(CollectiveBackend::Modeled);
        let placement = Placement::one_per_host(&local_hosts(&t, 2));
        let _ = rt.run(&placement, |_comm| Ok(()));
    }

    #[test]
    fn invalid_rank_is_rejected() {
        let t = topology(2, 2);
        let rt = MpiRuntime::new(t.clone());
        let placement = Placement::co_located(2, local_hosts(&t, 1)[0]);
        let result = rt.run(&placement, |comm| {
            if comm.rank() == 0 {
                match comm.send(9, 0, &[1i32]) {
                    Err(MpiError::InvalidRank { rank: 9, size: 2 }) => Ok(true),
                    other => panic!("expected invalid rank, got {other:?}"),
                }
            } else {
                Ok(true)
            }
        });
        assert!(result.all_ranks_completed());
    }
}
