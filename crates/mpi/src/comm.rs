//! The per-process communicator: point-to-point messaging, compute-time
//! accounting and the logical clock.
//!
//! Every process instance owns one [`Comm`].  All communication updates the
//! instance's *virtual* clock from the network cost model: receiving a
//! message sets `clock = max(clock, sender_clock + transfer_time)`, so the
//! job's makespan is independent of how the OS happens to schedule the
//! underlying threads.

use crate::datatype::{wire_size, Datatype};
use crate::envelope::{Envelope, Router};
use crate::error::{MpiError, MpiResult, Rank, Tag};
use crate::registry::Registry;
use crate::stats::CommStats;
use crossbeam_channel::{Receiver, RecvTimeoutError};
use p2pmpi_simgrid::compute::ComputeModel;
use p2pmpi_simgrid::memory::MemoryIntensity;
use p2pmpi_simgrid::network::NetworkModel;
use p2pmpi_simgrid::time::{SimDuration, SimTime};
use p2pmpi_simgrid::topology::HostId;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::Duration;

/// How long (in *real* time) a receive waits before concluding that no live
/// replica of the sender remains.
pub const DEFAULT_RECV_TIMEOUT: Duration = Duration::from_secs(10);

/// The communicator handed to user code running inside one process instance.
pub struct Comm {
    rank: Rank,
    replica: u32,
    size: u32,
    replication: u32,
    host: HostId,
    residents: usize,
    clock: SimTime,
    network: NetworkModel,
    compute: ComputeModel,
    router: Arc<Router>,
    registry: Arc<Registry>,
    rx: Receiver<Envelope>,
    send_seq: HashMap<(Rank, Tag), u64>,
    recv_seq: HashMap<(Rank, Tag), u64>,
    pending: VecDeque<Envelope>,
    fail_after: Option<u64>,
    ops: u64,
    stats: CommStats,
    recv_timeout: Duration,
}

/// Everything needed to build a `Comm`; assembled by the runtime.
pub(crate) struct CommConfig {
    pub rank: Rank,
    pub replica: u32,
    pub size: u32,
    pub replication: u32,
    pub host: HostId,
    pub residents: usize,
    pub network: NetworkModel,
    pub compute: ComputeModel,
    pub router: Arc<Router>,
    pub registry: Arc<Registry>,
    pub rx: Receiver<Envelope>,
    pub fail_after: Option<u64>,
    pub recv_timeout: Duration,
}

impl Comm {
    pub(crate) fn new(config: CommConfig) -> Self {
        Comm {
            rank: config.rank,
            replica: config.replica,
            size: config.size,
            replication: config.replication,
            host: config.host,
            residents: config.residents,
            clock: SimTime::ZERO,
            network: config.network,
            compute: config.compute,
            router: config.router,
            registry: config.registry,
            rx: config.rx,
            send_seq: HashMap::new(),
            recv_seq: HashMap::new(),
            pending: VecDeque::new(),
            fail_after: config.fail_after,
            ops: 0,
            stats: CommStats::default(),
            recv_timeout: config.recv_timeout,
        }
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// This process's logical MPI rank.
    pub fn rank(&self) -> Rank {
        self.rank
    }

    /// The communicator size (`n`, the number of logical ranks).
    pub fn size(&self) -> u32 {
        self.size
    }

    /// This instance's replica index (0 for the primary copy).
    pub fn replica(&self) -> u32 {
        self.replica
    }

    /// The job's replication degree (`r`).
    pub fn replication(&self) -> u32 {
        self.replication
    }

    /// True if this instance is currently the lowest-index live copy of its
    /// rank.
    pub fn is_primary(&self) -> bool {
        self.registry.is_primary(self.rank, self.replica)
    }

    /// The host this instance runs on.
    pub fn host(&self) -> HostId {
        self.host
    }

    /// Number of process instances sharing this host (including this one).
    pub fn residents(&self) -> usize {
        self.residents
    }

    /// The instance's logical clock.
    pub fn clock(&self) -> SimTime {
        self.clock
    }

    /// Virtual time elapsed since the job started.
    pub fn elapsed(&self) -> SimDuration {
        self.clock.saturating_since(SimTime::ZERO)
    }

    /// This instance's communication statistics so far.
    pub fn stats(&self) -> &CommStats {
        &self.stats
    }

    /// Number of MPI operations executed so far (used by failure plans).
    pub fn ops_executed(&self) -> u64 {
        self.ops
    }

    // ------------------------------------------------------------------
    // Failure injection and clock accounting
    // ------------------------------------------------------------------

    /// Counts one MPI operation, failing this instance if the failure plan
    /// says so.
    fn bump_op(&mut self) -> MpiResult<()> {
        if let Some(threshold) = self.fail_after {
            if self.ops >= threshold {
                self.registry.mark_failed(self.rank, self.replica);
                return Err(MpiError::ProcessFailed);
            }
        }
        self.ops += 1;
        Ok(())
    }

    /// Charges `ops` abstract operations of the given memory intensity to
    /// this instance's clock, accounting for co-resident processes.
    pub fn compute(&mut self, ops: f64, intensity: MemoryIntensity) -> MpiResult<()> {
        self.bump_op()?;
        let t = self
            .compute
            .compute_time(self.host, ops, intensity, self.residents);
        self.clock += t;
        self.stats.compute_ops += ops;
        self.stats.compute_time += t;
        Ok(())
    }

    /// Advances the clock by an explicit amount (I/O, set-up phases, tests).
    pub fn advance(&mut self, d: SimDuration) {
        self.clock += d;
    }

    fn check_rank(&self, rank: Rank) -> MpiResult<()> {
        if rank >= self.size {
            return Err(MpiError::InvalidRank {
                rank,
                size: self.size,
            });
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Point-to-point
    // ------------------------------------------------------------------

    /// Sends `data` to every replica of `dst` under `tag` (the replication
    /// layer deduplicates on the receiving side).  Buffered/non-blocking: the
    /// call returns once the message is handed to the transport.
    pub fn send<T: Datatype>(&mut self, dst: Rank, tag: Tag, data: &[T]) -> MpiResult<()> {
        self.check_rank(dst)?;
        self.bump_op()?;
        let payload = T::to_bytes(data);
        let wire_bytes = wire_size(data);
        let seq = {
            let counter = self.send_seq.entry((dst, tag)).or_insert(0);
            let s = *counter;
            *counter += 1;
            s
        };
        // The sender pays the per-message software overhead (serialization,
        // syscalls); propagation and bandwidth are charged on the receiving
        // side from the sender's timestamp.
        self.clock += self.network.params().per_message_overhead;
        let envelope = Envelope {
            src: self.rank,
            src_replica: self.replica,
            src_host: self.host,
            dst,
            tag,
            seq,
            sent_at: self.clock,
            wire_bytes,
            payload,
        };
        let delivered = self.router.deliver_to_all_replicas(dst, &envelope);
        if delivered == 0 && self.registry.primary_replica(dst).is_none() {
            // Every replica of the destination has been failed.  (If the
            // destination simply finished its kernel already, the message is
            // dropped silently — normal termination is not a fault.)
            return Err(MpiError::PeerUnreachable { rank: dst });
        }
        self.stats.messages_sent += 1;
        self.stats.bytes_sent += wire_bytes;
        Ok(())
    }

    /// Receives the next in-order message from `src` under `tag`.
    pub fn recv<T: Datatype>(&mut self, src: Rank, tag: Tag) -> MpiResult<Vec<T>> {
        self.check_rank(src)?;
        self.bump_op()?;
        let expected = *self.recv_seq.get(&(src, tag)).unwrap_or(&0);

        // First look at messages we already pulled off the channel.
        if let Some(pos) = self
            .pending
            .iter()
            .position(|e| e.src == src && e.tag == tag && e.seq == expected)
        {
            let env = self.pending.remove(pos).expect("position is valid");
            return self.accept::<T>(env);
        }

        loop {
            match self.rx.recv_timeout(self.recv_timeout) {
                Ok(env) => {
                    if env.src == src && env.tag == tag {
                        if env.seq == expected {
                            return self.accept::<T>(env);
                        }
                        if env.seq < expected {
                            continue; // duplicate copy from a sender replica
                        }
                    } else {
                        // Drop duplicates of already-consumed messages from
                        // other (src, tag) streams, stash the rest.
                        let other_expected = *self.recv_seq.get(&(env.src, env.tag)).unwrap_or(&0);
                        if env.seq < other_expected {
                            continue;
                        }
                    }
                    self.pending.push_back(env);
                }
                Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => {
                    return Err(MpiError::PeerUnreachable { rank: src });
                }
            }
        }
    }

    fn accept<T: Datatype>(&mut self, env: Envelope) -> MpiResult<Vec<T>> {
        *self.recv_seq.entry((env.src, env.tag)).or_insert(0) += 1;
        let transfer = self
            .network
            .transfer_time(env.src_host, self.host, env.wire_bytes);
        self.clock = self.clock.max(env.sent_at + transfer);
        self.stats.messages_received += 1;
        self.stats.bytes_received += env.wire_bytes;
        Ok(T::from_bytes(&env.payload))
    }

    /// Combined send to `dst` and receive from `src` (both under `tag`).
    pub fn sendrecv<T: Datatype>(
        &mut self,
        dst: Rank,
        src: Rank,
        tag: Tag,
        data: &[T],
    ) -> MpiResult<Vec<T>> {
        self.send(dst, tag, data)?;
        self.recv(src, tag)
    }

    /// Number of currently-live replicas of `rank` (fault-tolerance aware
    /// kernels can use this to observe masked failures).
    pub fn alive_replicas_of(&self, rank: Rank) -> u32 {
        self.registry.alive_replicas(rank)
    }

    /// The network model (used by collectives for cost-aware algorithm
    /// selection; currently informational).
    pub fn network(&self) -> &NetworkModel {
        &self.network
    }
}
