//! Collective operations.
//!
//! The NAS kernels of the paper's Figure 4 exercise `MPI_Allreduce`,
//! `MPI_Alltoall` and `MPI_Alltoallv`; the rest of the usual set is provided
//! for completeness.  Every collective is built from the point-to-point layer
//! of [`Comm`], so its virtual-time cost emerges from the placement and the
//! network model — which is precisely the effect the paper's evaluation
//! studies:
//!
//! * broadcast / reduce use binomial trees (`⌈log₂ n⌉` latency steps),
//! * allreduce is reduce-to-0 followed by broadcast,
//! * barrier is an empty allreduce,
//! * gather / scatter are linear at the root,
//! * alltoall(v) uses the ring (shift) schedule, `n − 1` exchange steps.

use crate::comm::Comm;
use crate::datatype::{Datatype, ReduceOp, Reducible};
use crate::error::{MpiError, MpiResult, Rank, Tag};

/// Tags reserved for the collective implementations (user code should use
/// tags below `0xFF00`).
pub mod tags {
    use super::Tag;
    /// Broadcast tree messages.
    pub const BCAST: Tag = 0xFF01;
    /// Reduce tree messages.
    pub const REDUCE: Tag = 0xFF02;
    /// Gather messages.
    pub const GATHER: Tag = 0xFF03;
    /// Scatter messages.
    pub const SCATTER: Tag = 0xFF04;
    /// All-to-all exchange messages.
    pub const ALLTOALL: Tag = 0xFF05;
    /// All-to-all-v exchange messages.
    pub const ALLTOALLV: Tag = 0xFF06;
    /// All-to-all-v count exchange messages.
    pub const ALLTOALLV_COUNTS: Tag = 0xFF07;
}

impl Comm {
    /// Broadcast `data` from `root` to every rank; every rank returns the
    /// broadcast buffer (non-roots may pass an empty vector).
    pub fn bcast<T: Datatype>(&mut self, root: Rank, data: Vec<T>) -> MpiResult<Vec<T>> {
        let size = self.size();
        if root >= size {
            return Err(MpiError::InvalidRank { rank: root, size });
        }
        if size == 1 {
            return Ok(data);
        }
        let rank = self.rank();
        let relative = (rank + size - root) % size;
        let mut buffer = data;

        // Receive from the parent (if any).
        let mut mask: u32 = 1;
        while mask < size {
            if relative & mask != 0 {
                let src = (relative - mask + root) % size;
                buffer = self.recv::<T>(src, tags::BCAST)?;
                break;
            }
            mask <<= 1;
        }
        // Forward to children.
        mask >>= 1;
        while mask > 0 {
            if relative + mask < size {
                let dst = (relative + mask + root) % size;
                self.send(dst, tags::BCAST, &buffer)?;
            }
            mask >>= 1;
        }
        Ok(buffer)
    }

    /// Element-wise reduction of `data` onto `root`; returns `Some(result)`
    /// at the root and `None` elsewhere.
    pub fn reduce<T: Reducible>(
        &mut self,
        root: Rank,
        op: ReduceOp,
        data: &[T],
    ) -> MpiResult<Option<Vec<T>>> {
        let size = self.size();
        if root >= size {
            return Err(MpiError::InvalidRank { rank: root, size });
        }
        let rank = self.rank();
        let mut acc = data.to_vec();
        if size == 1 {
            return Ok(Some(acc));
        }
        let relative = (rank + size - root) % size;
        let mut mask: u32 = 1;
        while mask < size {
            if relative & mask == 0 {
                let child_rel = relative | mask;
                if child_rel < size {
                    let src = (child_rel + root) % size;
                    let contribution = self.recv::<T>(src, tags::REDUCE)?;
                    if contribution.len() != acc.len() {
                        return Err(MpiError::CollectiveMismatch(format!(
                            "reduce buffer length mismatch: {} vs {}",
                            contribution.len(),
                            acc.len()
                        )));
                    }
                    T::reduce_into(op, &mut acc, &contribution);
                }
            } else {
                let parent_rel = relative & !mask;
                let dst = (parent_rel + root) % size;
                self.send(dst, tags::REDUCE, &acc)?;
                return Ok(None);
            }
            mask <<= 1;
        }
        Ok(Some(acc))
    }

    /// Reduction whose result is available on every rank
    /// (`MPI_Allreduce`): reduce to rank 0 then broadcast.
    pub fn allreduce<T: Reducible>(&mut self, op: ReduceOp, data: &[T]) -> MpiResult<Vec<T>> {
        let reduced = self.reduce(0, op, data)?;
        let seed = reduced.unwrap_or_default();
        self.bcast(0, seed)
    }

    /// Synchronizes every rank (`MPI_Barrier`).
    pub fn barrier(&mut self) -> MpiResult<()> {
        let _ = self.allreduce::<u8>(ReduceOp::Sum, &[0])?;
        Ok(())
    }

    /// Gathers every rank's buffer at `root`, concatenated in rank order;
    /// `Some` at the root, `None` elsewhere.  Buffers may have different
    /// lengths (this is closer to `MPI_Gatherv`).
    pub fn gather<T: Datatype>(&mut self, root: Rank, data: &[T]) -> MpiResult<Option<Vec<T>>> {
        let size = self.size();
        if root >= size {
            return Err(MpiError::InvalidRank { rank: root, size });
        }
        if self.rank() == root {
            let mut out = Vec::new();
            for src in 0..size {
                if src == root {
                    out.extend_from_slice(data);
                } else {
                    out.extend(self.recv::<T>(src, tags::GATHER)?);
                }
            }
            Ok(Some(out))
        } else {
            self.send(root, tags::GATHER, data)?;
            Ok(None)
        }
    }

    /// Gathers every rank's buffer on every rank (`MPI_Allgather` for equal
    /// counts, `MPI_Allgatherv` otherwise).
    pub fn allgather<T: Datatype>(&mut self, data: &[T]) -> MpiResult<Vec<T>> {
        let gathered = self.gather(0, data)?;
        self.bcast(0, gathered.unwrap_or_default())
    }

    /// Scatters equal-sized blocks of `data` (significant at the root only)
    /// to every rank; every rank returns its block of `count` elements.
    pub fn scatter<T: Datatype>(
        &mut self,
        root: Rank,
        data: &[T],
        count: usize,
    ) -> MpiResult<Vec<T>> {
        let size = self.size();
        if root >= size {
            return Err(MpiError::InvalidRank { rank: root, size });
        }
        if self.rank() == root {
            if data.len() != count * size as usize {
                return Err(MpiError::CollectiveMismatch(format!(
                    "scatter needs {} elements at the root, got {}",
                    count * size as usize,
                    data.len()
                )));
            }
            let mut own = Vec::new();
            for dst in 0..size {
                let block = &data[dst as usize * count..(dst as usize + 1) * count];
                if dst == root {
                    own = block.to_vec();
                } else {
                    self.send(dst, tags::SCATTER, block)?;
                }
            }
            Ok(own)
        } else {
            self.recv::<T>(root, tags::SCATTER)
        }
    }

    /// Exchanges equal-sized blocks between every pair of ranks
    /// (`MPI_Alltoall`): `data` holds `size` blocks of `data.len()/size`
    /// elements; the result holds the blocks received from each rank, in
    /// rank order.
    pub fn alltoall<T: Datatype>(&mut self, data: &[T]) -> MpiResult<Vec<T>> {
        let size = self.size() as usize;
        if !data.len().is_multiple_of(size) {
            return Err(MpiError::CollectiveMismatch(format!(
                "alltoall buffer of {} elements is not divisible by {} ranks",
                data.len(),
                size
            )));
        }
        let block = data.len() / size;
        let rank = self.rank() as usize;
        // One flat result buffer, written in place: cloning the send buffer
        // leaves the own block (slot `rank`) already correct, and every other
        // slot is overwritten by exactly one received block below.
        let mut result = data.to_vec();
        // Ring schedule: at step s exchange with rank+s / rank-s.
        for step in 1..size {
            let dst = ((rank + step) % size) as Rank;
            let src = ((rank + size - step) % size) as Rank;
            self.send(
                dst,
                tags::ALLTOALL,
                &data[dst as usize * block..(dst as usize + 1) * block],
            )?;
            let incoming = self.recv::<T>(src, tags::ALLTOALL)?;
            if incoming.len() != block {
                return Err(MpiError::CollectiveMismatch(format!(
                    "alltoall expected a block of {block} elements from rank {src}, got {}",
                    incoming.len()
                )));
            }
            result[src as usize * block..(src as usize + 1) * block].copy_from_slice(&incoming);
        }
        Ok(result)
    }

    /// Exchanges variable-sized blocks between every pair of ranks
    /// (`MPI_Alltoallv`): `blocks[d]` is sent to rank `d`.  Returns the
    /// received elements as one flat buffer in source-rank order plus the
    /// per-source element counts (`counts[s]` elements came from rank `s`),
    /// so callers index block `s` at `counts[..s].sum()..` without any
    /// nested-vector bookkeeping or flattening pass.
    pub fn alltoallv<T: Datatype>(&mut self, blocks: &[Vec<T>]) -> MpiResult<(Vec<T>, Vec<usize>)> {
        let size = self.size() as usize;
        if blocks.len() != size {
            return Err(MpiError::CollectiveMismatch(format!(
                "alltoallv needs one block per rank ({size}), got {}",
                blocks.len()
            )));
        }
        let rank = self.rank() as usize;
        let mut counts = vec![0usize; size];
        counts[rank] = blocks[rank].len();
        // Blocks arrive in ring order (rank-1, rank-2, ...), not source
        // order; park each transport buffer in its source's slot, then copy
        // every element exactly once into the flat result.
        let mut received: Vec<Option<Vec<T>>> = (0..size).map(|_| None).collect();
        for step in 1..size {
            let dst = ((rank + step) % size) as Rank;
            let src = ((rank + size - step) % size) as Rank;
            self.send(dst, tags::ALLTOALLV, &blocks[dst as usize])?;
            let incoming = self.recv::<T>(src, tags::ALLTOALLV)?;
            counts[src as usize] = incoming.len();
            received[src as usize] = Some(incoming);
        }
        let total: usize = counts.iter().sum();
        let mut result: Vec<T> = Vec::with_capacity(total);
        for (src, slot) in received.iter_mut().enumerate() {
            if src == rank {
                result.extend_from_slice(&blocks[rank]);
            } else {
                result.extend_from_slice(&slot.take().expect("one block per remote rank"));
            }
        }
        Ok((result, counts))
    }
}
