//! Message envelopes and the in-process router.
//!
//! The runtime runs every process instance as a thread; messages travel over
//! unbounded crossbeam channels.  The [`Envelope`] carries, besides the
//! payload, everything the receiver needs to update its *virtual* clock: the
//! sender's logical send time, the sender's host and the wire size.

use crate::error::{Rank, Tag};
use crate::placement::Placement;
use crossbeam_channel::{unbounded, Receiver, Sender};
use p2pmpi_simgrid::time::SimTime;
use p2pmpi_simgrid::topology::HostId;

/// One message in flight.
#[derive(Debug, Clone)]
pub struct Envelope {
    /// Sender's logical rank.
    pub src: Rank,
    /// Sender's replica index.
    pub src_replica: u32,
    /// Sender's host (used for the transfer-time model).
    pub src_host: HostId,
    /// Destination logical rank.
    pub dst: Rank,
    /// Message tag.
    pub tag: Tag,
    /// Per-(src, dst, tag) sequence number; receivers use it to discard the
    /// duplicate copies produced by sender replication.
    pub seq: u64,
    /// Sender's virtual clock when the message left.
    pub sent_at: SimTime,
    /// Bytes on the wire.
    pub wire_bytes: u64,
    /// Serialized payload.
    pub payload: Vec<u8>,
}

/// Routes envelopes to process-instance channels.
pub struct Router {
    replication: u32,
    senders: Vec<Sender<Envelope>>,
}

impl Router {
    /// Builds the channel mesh for a placement; returns the router (shared by
    /// all instances) and one receiver per instance, indexed by
    /// [`Placement::instance_index`].
    pub fn new(placement: &Placement) -> (Router, Vec<Receiver<Envelope>>) {
        let count = placement.processes as usize * placement.replication as usize;
        let mut senders = Vec::with_capacity(count);
        let mut receivers = Vec::with_capacity(count);
        for _ in 0..count {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        (
            Router {
                replication: placement.replication,
                senders,
            },
            receivers,
        )
    }

    /// Number of replicas per rank.
    pub fn replication(&self) -> u32 {
        self.replication
    }

    /// Sends an envelope to one specific `(rank, replica)` instance.
    /// Returns `false` if that instance's receiver is gone (its thread has
    /// already finished) — callers treat this as a best-effort delivery, the
    /// replication layer tolerates it.
    pub fn deliver(&self, rank: Rank, replica: u32, envelope: Envelope) -> bool {
        let idx = (rank * self.replication + replica) as usize;
        match self.senders.get(idx) {
            Some(tx) => tx.send(envelope).is_ok(),
            None => false,
        }
    }

    /// Sends copies of an envelope to every replica of `rank`.  Returns the
    /// number of copies actually delivered.
    pub fn deliver_to_all_replicas(&self, rank: Rank, envelope: &Envelope) -> usize {
        (0..self.replication)
            .filter(|&rep| self.deliver(rank, rep, envelope.clone()))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn envelope(src: Rank, dst: Rank, seq: u64) -> Envelope {
        Envelope {
            src,
            src_replica: 0,
            src_host: HostId(0),
            dst,
            tag: 1,
            seq,
            sent_at: SimTime::ZERO,
            wire_bytes: 8,
            payload: vec![1, 2, 3],
        }
    }

    #[test]
    fn router_routes_to_the_right_instance() {
        let p = Placement::co_located(3, HostId(0));
        let (router, receivers) = Router::new(&p);
        assert!(router.deliver(2, 0, envelope(0, 2, 0)));
        assert!(receivers[2].try_recv().is_ok());
        assert!(receivers[0].try_recv().is_err());
        assert!(receivers[1].try_recv().is_err());
    }

    #[test]
    fn replicated_delivery_fans_out() {
        let p = Placement::replicated_round_robin(2, 2, &[HostId(0), HostId(1)]);
        let (router, receivers) = Router::new(&p);
        assert_eq!(router.replication(), 2);
        let delivered = router.deliver_to_all_replicas(1, &envelope(0, 1, 0));
        assert_eq!(delivered, 2);
        // Instance indices of rank 1: 2 (replica 0) and 3 (replica 1).
        assert!(receivers[2].try_recv().is_ok());
        assert!(receivers[3].try_recv().is_ok());
    }

    #[test]
    fn delivery_to_dropped_receiver_reports_false() {
        let p = Placement::co_located(2, HostId(0));
        let (router, receivers) = Router::new(&p);
        drop(receivers);
        assert!(!router.deliver(0, 0, envelope(1, 0, 0)));
        assert_eq!(router.deliver_to_all_replicas(1, &envelope(0, 1, 0)), 0);
    }

    #[test]
    fn out_of_range_instance_is_false() {
        let p = Placement::co_located(2, HostId(0));
        let (router, _rx) = Router::new(&p);
        assert!(!router.deliver(5, 0, envelope(0, 5, 0)));
    }
}
